"""WAL, pager, and B+tree corner cases beyond the basics."""

from __future__ import annotations

import random

import pytest

from repro.db import Database
from repro.db.btree import BTree
from repro.db.pager import PAGE_SIZE, Pager
from repro.db.wal import WriteAheadLog
from repro.errors import DbError
from repro.fs import Ext4Dax


def dax():
    return Ext4Dax(device_size=96 << 20)


class TestWalCycles:
    def test_many_checkpoint_cycles_with_fresh_salts(self):
        fs = dax()
        db_file = fs.create("d", 1 << 20)
        wal = WriteAheadLog(fs.create("w", 1 << 20))
        for cycle in range(10):
            wal.commit({cycle: bytes([cycle + 1]) * PAGE_SIZE})
            wal.checkpoint(db_file)
        for cycle in range(10):
            assert db_file.read(cycle * PAGE_SIZE, 1) == bytes([cycle + 1])
        assert wal.salt == 11

    def test_log_grows_across_commits_until_checkpoint(self):
        fs = dax()
        wal = WriteAheadLog(fs.create("w", 4 << 20))
        start = wal.tail
        for i in range(5):
            wal.commit({i: b"x" * PAGE_SIZE})
        assert wal.tail > start + 5 * PAGE_SIZE
        wal.checkpoint(fs.create("d", 1 << 20))
        assert wal.tail < PAGE_SIZE

    def test_recover_after_multiple_epochs(self):
        """Frames from an old salt interleaved on disk with the fresh
        epoch must not replay."""
        fs = dax()
        db_file = fs.create("d", 1 << 20)
        wal_handle = fs.create("w", 1 << 20)
        wal = WriteAheadLog(wal_handle)
        wal.commit({1: (b"OLD" * 1366)[:PAGE_SIZE]})
        wal.checkpoint(db_file)
        wal.commit({2: (b"NEW" * 1366)[:PAGE_SIZE]})
        fs.device.drain()
        recovered = WriteAheadLog.recover(fs.open("w"), db_file)
        assert db_file.read(2 * PAGE_SIZE, 3) == b"NEW"
        assert db_file.read(PAGE_SIZE, 3) == b"OLD"  # from the checkpoint
        assert recovered.salt > wal.salt - 1

    def test_oversized_frame_rejected(self):
        fs = dax()
        wal = WriteAheadLog(fs.create("w", 1 << 20))
        with pytest.raises(DbError):
            wal.commit({0: b"x" * (PAGE_SIZE + 1)})

    def test_empty_commit_is_noop(self):
        fs = dax()
        wal = WriteAheadLog(fs.create("w", 1 << 20))
        tail = wal.tail
        wal.commit({})
        assert wal.tail == tail

    def test_checkpoint_empty_log(self):
        fs = dax()
        wal = WriteAheadLog(fs.create("w", 1 << 20))
        assert wal.checkpoint(fs.create("d", 1 << 20)) == 0


class TestBtreeLimits:
    def test_oversized_value_raises_cleanly(self):
        fs = dax()
        pager = Pager(fs.create("d", 1 << 20))
        tree = BTree(pager, pager.allocate(), initialize=True)
        with pytest.raises(DbError):
            tree.insert(b"k", b"v" * (PAGE_SIZE + 100))

    def test_value_near_page_limit(self):
        fs = dax()
        pager = Pager(fs.create("d", 4 << 20))
        tree = BTree(pager, pager.allocate(), initialize=True)
        big = b"v" * 3800
        tree.insert(b"a", big)
        tree.insert(b"b", big)
        assert tree.get(b"a") == big and tree.get(b"b") == big

    def test_duplicate_heavy_upserts_stable(self):
        fs = dax()
        pager = Pager(fs.create("d", 4 << 20))
        tree = BTree(pager, pager.allocate(), initialize=True)
        for i in range(3000):
            tree.insert(b"same", str(i).encode())
        assert tree.get(b"same") == b"2999"
        assert tree.count() == 1

    def test_empty_key(self):
        fs = dax()
        pager = Pager(fs.create("d", 1 << 20))
        tree = BTree(pager, pager.allocate(), initialize=True)
        tree.insert(b"", b"empty-key")
        assert tree.get(b"") == b"empty-key"
        assert next(iter(tree.scan()))[0] == b""

    def test_interleaved_delete_insert_scan(self):
        fs = dax()
        pager = Pager(fs.create("d", 8 << 20))
        tree = BTree(pager, pager.allocate(), initialize=True)
        rng = random.Random(4)
        model = {}
        for step in range(2000):
            k = f"{rng.randrange(400):04d}".encode()
            if rng.random() < 0.5:
                tree.insert(k, b"v%d" % step)
                model[k] = b"v%d" % step
            else:
                tree.delete(k)
                model.pop(k, None)
            if step % 500 == 499:
                assert dict(tree.scan()) == model


class TestDatabaseLimits:
    def test_wal_capacity_respected_via_checkpoints(self):
        fs = dax()
        db = Database(fs, journal_mode="wal", wal_capacity=2 << 20, checkpoint_limit=256 << 10)
        t = db.create_table("t")
        for i in range(800):
            t.insert((i,), ("x" * 200,))
        assert db.wal.tail <= 2 << 20
        db.close()

    def test_many_tables(self):
        fs = dax()
        db = Database(fs, journal_mode="off")
        tables = [db.create_table(f"t{i}") for i in range(20)]
        for i, table in enumerate(tables):
            table.insert((1,), (i,))
        db.close()
        db2 = Database(fs, journal_mode="off")
        for i in range(20):
            assert db2.table(f"t{i}").get((1,)) == (i,)

    def test_catalog_overflow_rejected(self):
        fs = dax()
        db = Database(fs, journal_mode="off")
        with pytest.raises(Exception):
            for i in range(500):
                db.create_table(f"long-table-name-{i:05d}")

    def test_autocommit_statement_failure_rolls_back(self):
        fs = dax()
        db = Database(fs, journal_mode="wal")
        t = db.create_table("t")
        with pytest.raises(DbError):
            t.insert((1,), ("x" * (PAGE_SIZE + 10),))
        assert not db.in_tx  # state machine recovered
        t.insert((1,), ("ok",))
        assert t.get((1,)) == ("ok",)
