"""Unit-level checks of plan_txn_write (the durable-shadowed targeting)."""

from __future__ import annotations

import pytest

from repro.core import MgspConfig, MgspFilesystem
from repro.core import bitmap

CAP = 512 * 1024


@pytest.fixture
def setup():
    fs = MgspFilesystem(device_size=64 << 20, config=MgspConfig(degree=16))
    f = fs.create("t", capacity=CAP)
    return fs, f


def plan_txn(f, offset, data, durable=None):
    durable_map = durable or {}

    def durable_word(node):
        return durable_map.get((node.level, node.index), node.word)

    return f.shadow.plan_txn_write(offset, data, f.tree.next_gen(), durable_word)


class TestTargets:
    def test_fresh_leaf_targets_own_log(self, setup):
        fs, f = setup
        plan = plan_txn(f, 0, b"x" * 4096)
        leaf = f.tree.peek(0, 0)
        assert plan.data_writes[0][0] == leaf.log_off

    def test_durable_valid_leaf_targets_ancestor(self, setup):
        fs, f = setup
        f.write(0, b"committed" * 455)  # 4095B -> leaf log valid
        plan = plan_txn(f, 0, b"y" * 4096)
        # Durable bits say "leaf log holds latest" -> safe target = file.
        assert plan.data_writes[0][0] == f.inode.base

    def test_repeat_target_is_stable(self, setup):
        """Unlike plain writes (which alternate), txn writes keep hitting
        the same durable-shadowed slot."""
        fs, f = setup
        txn = fs.begin_transaction(f)
        txn.write(0, b"1" * 4096)
        leaf = f.tree.peek(0, 0)
        first_target = leaf.log_off
        durable = {(0, 0): txn._durable_word(leaf)}
        plan2 = plan_txn(f, 0, b"2" * 4096, durable)
        assert plan2.data_writes[0][0] == first_target
        txn.rollback()

    def test_leaf_only_decomposition(self, setup):
        fs, f = setup
        f.write(CAP - 4096, b"grow")  # raise the height
        plan = plan_txn(f, 0, b"z" * (4096 * 16))  # one full L1 range
        # Plain writes would coarse-commit at L1; txn plans leaves only.
        assert all(node.level == 0 for node, _, __ in plan.commits)
        assert len(plan.commits) == 16

    def test_staged_mask_is_opposite_of_durable(self, setup):
        fs, f = setup
        txn = fs.begin_transaction(f)
        txn.write(0, b"a" * 128)  # durable bit 0 -> staged 1
        leaf = f.tree.peek(0, 0)
        assert bitmap.unpack_leaf(leaf.word).mask & 1 == 1
        txn.rollback()

        f.write(0, b"b" * 128)  # commit: durable bit now 1
        txn2 = fs.begin_transaction(f)
        txn2.write(0, b"c" * 128)  # durable bit 1 -> staged 0
        assert bitmap.unpack_leaf(leaf.word).mask & 1 == 0
        txn2.rollback()
        assert bitmap.unpack_leaf(leaf.word).mask & 1 == 1  # restored

    def test_rmw_fill_uses_txn_data_for_rewritten_blocks(self, setup):
        fs, f = setup
        txn = fs.begin_transaction(f)
        txn.write(0, b"A" * 128)
        txn.write(64, b"B" * 32)  # partial overwrite of the same sub-block
        assert txn.read(0, 128) == b"A" * 64 + b"B" * 32 + b"A" * 32
        txn.commit()
        assert f.read(0, 128) == b"A" * 64 + b"B" * 32 + b"A" * 32

    def test_path_existing_bits_refreshed(self, setup):
        fs, f = setup
        plan = plan_txn(f, 0, b"x" * 100)
        assert plan.refreshes  # root (at least) gets its existing bit
        node, word = plan.refreshes[0]
        assert bitmap.unpack_nonleaf(word).existing

    def test_commit_slots_carry_final_mask(self, setup):
        fs, f = setup
        plan = plan_txn(f, 0, b"x" * 256)  # sub-blocks 0 and 1
        _, word, slot = plan.commits[0]
        assert slot.is_leaf
        assert slot.leaf_mask == 0b11
        assert bitmap.unpack_leaf(word).mask == 0b11
