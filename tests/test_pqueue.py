"""Functional tests for the durable lock-free MPSC queue (ISSUE 6).

Crash behavior lives in test_pqueue_crash.py; this file pins the
fair-weather API contract: format/reopen, FIFO order under out-of-order
producer commits, skip-marker handling, wrap-around slot reuse, and
recovery as an idempotent fixpoint on *clean* images.
"""

from __future__ import annotations

import pytest

from repro.db.pqueue import (
    HEADER_SIZE,
    PersistentQueue,
    QueueFormatError,
    QueueFullError,
)
from repro.nvm.device import NvmDevice

BASE = 4096
SIZE = 256 << 10


def fresh(nslots=8, payload_cap=48, sync=True):
    device = NvmDevice(SIZE)
    queue = PersistentQueue.format(device, BASE, nslots, payload_cap, sync=sync)
    return device, queue


class TestFormat:
    def test_format_then_reopen(self):
        device, _ = fresh()
        queue = PersistentQueue(device, BASE)
        assert queue.nslots == 8
        assert queue.payload_cap == 48
        assert queue.live_items() == []

    def test_open_unformatted_raises(self):
        device = NvmDevice(SIZE)
        with pytest.raises(QueueFormatError):
            PersistentQueue(device, BASE)

    def test_payload_cap_must_be_word_multiple(self):
        device = NvmDevice(SIZE)
        with pytest.raises(QueueFormatError):
            PersistentQueue.format(device, BASE, 8, 20)

    def test_oversized_payload_rejected(self):
        _, queue = fresh(payload_cap=16)
        with pytest.raises(QueueFormatError):
            queue.enqueue(b"x" * 17)


class TestFifo:
    def test_enqueue_dequeue_order(self):
        _, queue = fresh()
        for i in range(5):
            queue.enqueue(bytes([i]) * 8)
        assert [queue.dequeue() for _ in range(5)] == [bytes([i]) * 8 for i in range(5)]
        assert queue.dequeue() is None

    def test_out_of_order_commits_drain_in_seq_order(self):
        """MPSC: producer A reserves first but commits last; the consumer
        still sees A's item first (slot order is reservation order)."""
        _, queue = fresh()
        a = queue.enqueue_begin(b"a" * 8)
        b = queue.enqueue_begin(b"b" * 8)
        queue.enqueue_commit(b)
        # the head is reserved-but-uncommitted: the consumer must wait
        assert queue.dequeue() is None
        assert queue.live_items() == [b"b" * 8]
        queue.enqueue_commit(a)
        assert queue.dequeue() == b"a" * 8
        assert queue.dequeue() == b"b" * 8

    def test_full_queue_raises(self):
        _, queue = fresh(nslots=4)
        for i in range(4):
            queue.enqueue(bytes([i]) * 8)
        with pytest.raises(QueueFullError):
            queue.enqueue_begin(b"x" * 8)

    def test_wraparound_reuses_slots(self):
        _, queue = fresh(nslots=4)
        for round_ in range(5):  # 20 items through 4 slots
            for i in range(4):
                queue.enqueue(bytes([round_ * 4 + i]) * 8)
            for i in range(4):
                assert queue.dequeue() == bytes([round_ * 4 + i]) * 8

    def test_variable_payload_lengths(self):
        _, queue = fresh(payload_cap=48)
        payloads = [b"", b"x" * 7, b"y" * 48, b"z" * 13]
        for p in payloads:
            queue.enqueue(p)
        assert [queue.dequeue() for _ in payloads] == payloads


class TestRecoveryCleanImages:
    def test_recover_empty(self):
        device, _ = fresh()
        queue = PersistentQueue.recover(device, BASE)
        assert queue.live_items() == []
        assert queue.dequeue() is None

    def test_recover_preserves_live_items(self):
        device, queue = fresh()
        for i in range(6):
            queue.enqueue(bytes([i]) * 8)
        queue.dequeue()
        queue.dequeue()
        recovered = PersistentQueue.recover(device, BASE)
        assert recovered.live_items() == [bytes([i]) * 8 for i in range(2, 6)]

    def test_recover_skips_abandoned_reservation(self):
        """A begin with no commit is repaired with a skip marker and the
        later committed item still drains."""
        device, queue = fresh()
        queue.enqueue_begin(b"dead" * 2)  # never committed
        pending = queue.enqueue_begin(b"live" * 2)
        queue.enqueue_commit(pending)
        recovered = PersistentQueue.recover(device, BASE)
        assert recovered.live_items() == [b"live" * 2]
        assert recovered.dequeue() == b"live" * 2
        assert recovered.dequeue() is None

    def test_recover_is_idempotent_fixpoint(self):
        device, queue = fresh()
        queue.enqueue_begin(b"dead" * 2)
        queue.enqueue(b"live" * 2)
        PersistentQueue.recover(device, BASE)
        device.drain()
        first = bytes(device.buffer.durable)
        PersistentQueue.recover(device, BASE)
        device.drain()
        assert bytes(device.buffer.durable) == first

    def test_recovered_queue_keeps_working(self):
        """Sequence numbers continue past the recovered high-water mark
        (no stale-commit aliasing after reuse)."""
        device, queue = fresh(nslots=4)
        for i in range(3):
            queue.enqueue(bytes([i]) * 8)
        queue.dequeue()
        recovered = PersistentQueue.recover(device, BASE)
        recovered.enqueue(b"after" + b"\0" * 3)
        assert recovered.dequeue() == bytes([1]) * 8
        assert recovered.dequeue() == bytes([2]) * 8
        assert recovered.dequeue() == b"after" + b"\0" * 3

    def test_async_mode_ignores_stale_hints(self):
        """async mode never persists hints mid-run; recovery must rebuild
        cursors from the slots alone."""
        device, queue = fresh(sync=False)
        for i in range(5):
            queue.enqueue(bytes([i]) * 8)
        queue.dequeue()
        head_hint = device.buffer.load_u64(BASE + 24)
        assert head_hint == 1  # untouched since format
        recovered = PersistentQueue.recover(device, BASE, sync=False)
        assert recovered.live_items() == [bytes([i]) * 8 for i in range(1, 5)]

    def test_header_size_is_one_line(self):
        assert HEADER_SIZE == 64
