"""Leaf fast path: invalidation edges, slow-vs-fast differential, and
the incremental unfenced-word tracker.

The fast path (``MgspConfig.leaf_fast_path``, on by default) replays a
cached root->leaf chain instead of descending for writes fully contained
in one leaf. These tests pin down the cases where the cache must NOT be
trusted — height growth, checkpoint/epoch bumps, open transactions — and
assert the planner is observably identical to the generic descent.
"""

from __future__ import annotations

import random

import pytest

from repro.core import MgspConfig, MgspFilesystem
from repro.errors import TransactionError
from repro.nvm.cache import StoreBuffer
from repro.sim.trace import NullRecorder

CAP = 4 << 20


def make_fs(**kwargs):
    fs = MgspFilesystem(device_size=32 << 20, config=MgspConfig(**kwargs))
    handle = fs.create("f", capacity=CAP)
    fs.device.drain()
    return fs, handle


# ---------------------------------------------------------------- invalidation


def test_fast_path_survives_height_growth_mid_stream():
    fs, f = make_fs()
    f.write(0, b"a" * 64)  # small tree, chain cached
    hits_before = f.fast_hits
    f.write(0, b"b" * 64)
    assert f.fast_hits > hits_before  # second write hits the cache
    old_height = f.tree.height
    # Force the tree to grow: write past the currently covered range.
    far = (CAP // 2) + 4096
    f.write(far, b"c" * 64)
    assert f.tree.height >= old_height
    # The cached chain for leaf 0 predates the growth; the next write
    # must rebuild it (a stale chain would miss the new root).
    f.write(0, b"d" * 64)
    assert f.read(0, 64) == b"d" * 64
    assert f.read(far, 64) == b"c" * 64


def test_fast_path_invalidated_by_checkpoint_between_writes():
    fs, f = make_fs()
    f.write(4096, b"x" * 4096)
    misses_before = f.fast_misses
    f.checkpoint()  # bumps tree.epoch (node set rebuilt / logs retired)
    f.write(4096, b"y" * 4096)
    assert f.fast_misses > misses_before  # epoch change forced a rebuild
    assert f.read(4096, 4096) == b"y" * 4096


def test_fast_path_refused_during_open_transaction():
    fs, f = make_fs()
    f.write(0, b"base" * 16)
    txn = fs.begin_transaction(f)
    txn.write(0, b"Z" * 64)
    # Plain writes (fast path included) must refuse while a txn is open.
    with pytest.raises(TransactionError):
        f.write(64, b"nope")
    txn.commit()
    assert f.read(0, 64) == b"Z" * 64
    # After commit the plain path works again.
    f.write(64, b"ok" * 32)
    assert f.read(64, 64) == b"ok" * 32


def test_fast_path_read_after_write_identical_bytes():
    fs, f = make_fs()
    rng = random.Random(11)
    shadow = bytearray(CAP)
    for i in range(300):
        size = rng.choice([8, 64, 128, 512, 4096])
        off = rng.randrange(0, CAP - size)
        payload = bytes([(i + j) % 251 for j in range(size)])
        f.write(off, payload)
        shadow[off : off + size] = payload
        if i % 50 == 17:
            f.checkpoint()
    assert f.read(0, CAP).ljust(CAP, b"\0") == bytes(shadow)


# ---------------------------------------------------------------- differential


def _run_sequence(fast_path: bool, detach_tracer: bool):
    fs, f = make_fs(leaf_fast_path=fast_path)
    if detach_tracer:
        fs.recorder = NullRecorder()
        fs.device.tracer = None
    rng = random.Random(99)
    for i in range(250):
        size = rng.choice([8, 64, 100, 128, 2048, 4096, 6000])
        off = rng.randrange(0, CAP - size)
        f.write(off, bytes([(i * 3 + j) % 251 for j in range(size)]))
        if i % 83 == 5:
            f.checkpoint()
    image = bytes(fs.device.buffer.working)
    durable = bytes(fs.device.buffer.durable)
    stats = vars(fs.device.stats).copy()
    return image, durable, stats


@pytest.mark.parametrize("detach_tracer", [False, True])
def test_fast_and_slow_planner_differential(detach_tracer):
    """Same randomized sequence through both planners: identical device
    images AND identical DeviceStats (write amplification unchanged) —
    with the tracer attached (exact per-op fallback) and detached
    (fused batched path)."""
    fast = _run_sequence(True, detach_tracer)
    slow = _run_sequence(False, detach_tracer)
    assert fast[0] == slow[0]  # working image
    assert fast[1] == slow[1]  # durable image
    assert fast[2] == slow[2]  # DeviceStats


# ------------------------------------------------- unfenced-word tracker


def test_unfenced_words_matches_full_scan():
    """The incremental (touched-range + memo) tracker must report the
    exact word set of the reference full dirty/pending re-walk."""
    buf = StoreBuffer(1 << 16)
    rng = random.Random(3)
    for step in range(400):
        op = rng.randrange(6)
        if op == 0:
            off = rng.randrange(0, (1 << 16) - 256)
            buf.store(off, bytes([rng.randrange(256)]) * rng.choice([1, 8, 96]))
        elif op == 1:
            off = rng.randrange(0, (1 << 16) - 256)
            buf.nt_store(off, bytes([rng.randrange(256)]) * rng.choice([8, 64, 200]))
        elif op == 2:
            buf.nt_store_word(rng.randrange(0, (1 << 16) // 8) * 8, rng.getrandbits(64))
        elif op == 3:
            off = rng.randrange(0, (1 << 16) - 512)
            buf.flush(off, rng.choice([8, 64, 512]))
        elif op == 4:
            buf.fence()
        else:
            words = [
                (rng.randrange(0, (1 << 16) // 8) * 8, rng.getrandbits(64))
                for _ in range(rng.randrange(1, 5))
            ]
            buf.nt_store_words(words)
        assert buf.unfenced_words() == buf._unfenced_words_full_scan(), f"step {step}"
    buf.drain()
    assert buf.unfenced_words() == [] == buf._unfenced_words_full_scan()


def test_unfenced_words_memo_invalidated_by_mutation():
    buf = StoreBuffer(4096)
    buf.nt_store(0, b"\xff" * 8)
    first = buf.unfenced_words()
    assert first == [0]
    assert buf.unfenced_words() == first  # memo hit, same answer
    buf.nt_store(64, b"\xee" * 8)
    assert buf.unfenced_words() == [0, 64]  # memo dropped on store
    buf.fence()
    assert buf.unfenced_words() == []
