"""Workload generators: FIO runner, Mobibench, TPC-C."""

from __future__ import annotations

import pytest

from repro.bench.registry import make_fs
from repro.db import Database
from repro.workloads.fio import FioJob, run_fio, _offsets
from repro.workloads.mobibench import run_mobibench
from repro.workloads.tpcc import DISTRICTS, TpccDriver, run_tpcc


class TestFioJob:
    def test_kind_parsing(self):
        assert FioJob(op="randwrite").kind == "write"
        assert FioJob(op="randwrite").is_random
        assert FioJob(op="read").kind == "read"
        assert not FioJob(op="write").is_random
        assert FioJob(op="randrw").kind == "rw"

    def test_sequential_offsets_wrap_and_align(self):
        job = FioJob(op="write", bs=4096, fsize=64 * 4096)
        offs = _offsets(job, thread=0, per_thread_ops=100)
        assert all(o % 4096 == 0 for o in offs)
        assert all(0 <= o < job.fsize for o in offs)
        assert offs[1] - offs[0] == 4096

    def test_random_offsets_aligned_and_seeded(self):
        job = FioJob(op="randwrite", bs=4096, fsize=1 << 20, seed=5)
        a = _offsets(job, 0, 50)
        b = _offsets(job, 0, 50)
        assert a == b  # deterministic
        assert a != _offsets(job, 1, 50)  # thread-distinct
        assert all(o % 4096 == 0 for o in a)

    def test_sequential_threads_stride_disjoint_starts(self):
        job = FioJob(op="write", bs=4096, fsize=1 << 20, threads=4)
        starts = [_offsets(job, t, 1)[0] for t in range(4)]
        assert len(set(starts)) == 4


class TestRunFio:
    def test_single_thread_result(self):
        fs = make_fs("MGSP", device_size=64 << 20)
        job = FioJob(op="write", bs=4096, fsize=4 << 20, fsync=1, nops=50)
        result = run_fio(fs, job)
        assert result.ops == 50
        assert result.total_bytes == 50 * 4096
        assert result.throughput_mb_s > 0
        assert result.iops > 0
        assert 0.9 < result.write_amplification < 1.5

    def test_read_job_uses_prefilled_data(self):
        fs = make_fs("Ext4-DAX", device_size=64 << 20)
        job = FioJob(op="read", bs=4096, fsize=4 << 20, nops=30)
        result = run_fio(fs, job)
        assert result.total_bytes == 30 * 4096
        assert result.write_amplification == 0.0

    def test_mixed_job(self):
        fs = make_fs("MGSP", device_size=64 << 20)
        job = FioJob(op="randrw", bs=4096, fsize=4 << 20, write_ratio=0.5, nops=60)
        result = run_fio(fs, job)
        assert result.total_bytes == 60 * 4096

    def test_multithread_replay(self):
        fs = make_fs("MGSP", device_size=64 << 20)
        job = FioJob(op="write", bs=4096, fsize=4 << 20, fsync=1, threads=4, nops=80)
        result = run_fio(fs, job)
        assert result.ops == 80
        assert result.elapsed_ns > 0

    def test_scaling_beats_single_thread(self):
        single = run_fio(
            make_fs("MGSP", device_size=64 << 20),
            FioJob(op="write", bs=1024, fsize=4 << 20, fsync=1, threads=1, nops=100),
        )
        multi = run_fio(
            make_fs("MGSP", device_size=64 << 20),
            FioJob(op="write", bs=1024, fsize=4 << 20, fsync=1, threads=4, nops=400),
        )
        assert multi.throughput_mb_s > 1.5 * single.throughput_mb_s

    def test_fsync_interval_affects_throughput(self):
        never = run_fio(
            make_fs("Libnvmmio", device_size=64 << 20),
            FioJob(op="write", bs=4096, fsize=4 << 20, fsync=0, nops=100),
        )
        every = run_fio(
            make_fs("Libnvmmio", device_size=64 << 20),
            FioJob(op="write", bs=4096, fsize=4 << 20, fsync=1, nops=100),
        )
        assert never.throughput_mb_s > 2 * every.throughput_mb_s

    def test_mst_hit_rate_reported_for_mgsp(self):
        fs = make_fs("MGSP", device_size=64 << 20)
        result = run_fio(fs, FioJob(op="write", bs=4096, fsize=4 << 20, nops=50))
        assert result.mst_hit_rate > 0.5  # sequential job


class TestMobibench:
    @pytest.mark.parametrize("mode", ["insert", "update", "delete"])
    def test_modes_run(self, mode):
        fs = make_fs("MGSP", device_size=96 << 20)
        result = run_mobibench(fs, mode=mode, journal_mode="wal", transactions=40)
        assert result.transactions == 40
        assert result.tx_per_sec > 0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            run_mobibench(make_fs("MGSP", device_size=96 << 20), mode="upsert")

    def test_off_mode(self):
        fs = make_fs("Ext4-DAX", device_size=96 << 20)
        result = run_mobibench(fs, mode="insert", journal_mode="off", transactions=30)
        assert result.journal_mode == "off"
        assert result.tx_per_sec > 0


class TestTpcc:
    def test_full_mix_runs_and_balances(self):
        fs = make_fs("MGSP", device_size=192 << 20)
        result = run_tpcc(fs, journal_mode="wal", transactions=60)
        assert result.transactions == 60
        assert result.tpm > 0
        assert set(result.per_type) <= {
            "new_order",
            "payment",
            "order_status",
            "delivery",
            "stock_level",
        }
        assert sum(result.per_type.values()) == 60

    def test_new_order_consistency(self):
        """District next-order counters match the orders actually stored."""
        fs = make_fs("Ext4-DAX", device_size=192 << 20)
        db = Database(fs, name="tpcc.db", journal_mode="wal", capacity=40 << 20)
        driver = TpccDriver(db)
        driver.create_schema()
        driver.load()
        for _ in range(30):
            driver.new_order()
        total_orders = sum(driver.next_order_id[d] - 1 for d in range(1, DISTRICTS + 1))
        assert total_orders == 30
        stored = db.table("orders").count()
        assert stored == 30
        # Every order has its order lines.
        for d in range(1, DISTRICTS + 1):
            for o in range(1, driver.next_order_id[d]):
                order = db.table("orders").get((1, d, o))
                lines = list(db.table("order_line").scan_prefix((1, d, o)))
                assert order is not None and len(lines) == order[1]

    def test_payment_conserves_money(self):
        fs = make_fs("Ext4-DAX", device_size=192 << 20)
        db = Database(fs, name="tpcc.db", journal_mode="off", capacity=40 << 20)
        driver = TpccDriver(db)
        driver.create_schema()
        driver.load()
        ytd0 = db.table("warehouse").get((1,))[2]
        for _ in range(20):
            driver.payment()
        ytd1 = db.table("warehouse").get((1,))[2]
        paid = sum(row[0] for _, row in db.table("history").scan_all())
        assert ytd1 - ytd0 == pytest.approx(paid)

    def test_delivery_clears_new_orders(self):
        fs = make_fs("Ext4-DAX", device_size=192 << 20)
        db = Database(fs, name="tpcc.db", journal_mode="wal", capacity=40 << 20)
        driver = TpccDriver(db)
        driver.create_schema()
        driver.load()
        for _ in range(15):
            driver.new_order()
        before = db.table("new_order").count()
        driver.delivery()
        after = db.table("new_order").count()
        assert after < before
