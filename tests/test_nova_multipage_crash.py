"""NOVA journaled multi-page commit: crash regression tests (ISSUE 6).

The original NOVA model swung page-table pointers with no journal: a
crash between the swings of a multi-page write left a half-new file
that no recovery could repair (inference found it as a true bug). The
journaled protocol pins the fix: a checksummed commit entry becomes
durable *before* any pointer swing, and :meth:`Nova.recover` replays
the whole entry — so every crash image recovers to all-old or all-new.

Covered here: journal chunking across MAX_COMMIT_PAGES, an exhaustive
all-points x all-policies sweep of a multi-page burst workload, torn /
stale entry handling in the scanner, the never-shrink size guard, and
recovery idempotence.
"""

from __future__ import annotations

import struct
import zlib

import pytest

from repro.fs.nova import JOURNAL_ENTRY, MAX_COMMIT_PAGES, Nova
from repro.nvm.crash import CrashPlan, compose_image
from repro.nvm.device import NvmDevice

from repro.crashsweep.census import take_census
from repro.crashsweep.sweep import POLICIES
from repro.crashsweep.workloads import NovaSweepWorkload

DEVICE = 8 << 20
PAGE = 4096


def mounted(capacity=40 * PAGE):
    fs = Nova(device_size=DEVICE)
    handle = fs.create("f", capacity=capacity)
    return fs, handle


class TestJournalChunking:
    def test_multipage_write_round_trips(self):
        fs, handle = mounted()
        payload = bytes(range(256)) * (7 * PAGE // 256)  # 7 pages: 2 chunks
        handle.write(0, payload)
        assert handle.read(0, len(payload)) == payload
        assert handle.size == len(payload)

    def test_chunks_cap_at_max_commit_pages(self):
        """A 7-page write must issue ceil(7/5) = 2 commit entries, each
        covering at most MAX_COMMIT_PAGES pointer pairs."""
        fs, handle = mounted()
        entries = []
        original = fs._journal_append

        def spy(inode, new_size, chunk):
            entries.append(len(chunk))
            return original(inode, new_size, chunk)

        fs._journal_append = spy
        handle.write(0, b"\xab" * (7 * PAGE))
        assert entries == [MAX_COMMIT_PAGES, 2]

    def test_retired_entries_do_not_replay(self):
        """After a clean write the entries are retired: recovery of the
        drained image must be a pure no-op remount."""
        fs, handle = mounted()
        handle.write(0, b"\xcd" * (6 * PAGE))
        fs.device.drain()
        image = bytes(fs.device.buffer.durable)
        recovered = Nova.recover(NvmDevice.from_image(image))
        recovered.device.drain()
        assert bytes(recovered.device.buffer.durable) == image


class TestExhaustiveBurstSweep:
    def test_every_point_every_policy_is_atomic(self):
        """All crash points of a small multi-page burst run, all three
        policies: the per-op atomic oracle (all-old or all-new file
        content) plus recovery idempotence must hold everywhere."""
        workload = NovaSweepWorkload("nova-burst-small", pattern="multipage", nops=3)
        census = take_census(workload, "sync")
        assert census.parity_ok
        failures = []
        for point in range(census.events):
            outcome = workload.run("sync", CrashPlan(point))
            assert outcome.crashed
            for policy in POLICIES:
                image = compose_image(outcome.fs.device, policy, seed=point)
                violations = workload.check(
                    image, "sync", outcome.oracles, idempotence=True
                )
                if violations:
                    failures.append((point, policy.value, violations[0]))
        assert not failures, failures[:5]


class TestScannerGuards:
    class _CrashHere(Exception):
        pass

    def _crash_mid_swing(self):
        """Crash right after the commit entry's fence: the entry (and the
        CoW data it points at) is durable, none of the pointer swings
        happened."""
        fs, handle = mounted()
        handle.write(0, b"\x11" * (3 * PAGE))  # committed baseline
        fs.device.drain()

        original = fs._journal_append
        holder = {}

        def crash_after_commit(inode, new_size, chunk):
            holder["off"] = original(inode, new_size, chunk)
            raise self._CrashHere

        fs._journal_append = crash_after_commit
        with pytest.raises(self._CrashHere):
            handle.write(0, b"\x22" * (3 * PAGE))
        return fs, holder["off"]

    def test_valid_entry_rolls_forward(self):
        fs, entry_off = self._crash_mid_swing()
        # keep the entry, drop the (unfenced) retire + stray state
        live = set(fs.device.unfenced_words())
        keep = [w for w in live if entry_off <= w < entry_off + JOURNAL_ENTRY]
        image = bytes(fs.device.crash_image(persist_words=keep))
        recovered = Nova.recover(NvmDevice.from_image(image))
        h = recovered.open("f")
        assert h.read(0, 3 * PAGE) == b"\x22" * (3 * PAGE)

    def test_torn_entry_is_discarded(self):
        fs, entry_off = self._crash_mid_swing()
        live = set(fs.device.unfenced_words())
        keep = [w for w in live if entry_off <= w < entry_off + JOURNAL_ENTRY]
        image = bytearray(fs.device.crash_image(persist_words=keep))
        image[entry_off + 16] ^= 0xFF  # flip a body byte: crc mismatch
        recovered = Nova.recover(NvmDevice.from_image(bytes(image)))
        h = recovered.open("f")
        assert h.read(0, 3 * PAGE) == b"\x11" * (3 * PAGE)  # rolled back

    def test_insane_pair_count_is_discarded(self):
        fs, entry_off = self._crash_mid_swing()
        image = bytearray(fs.device.crash_image(persist_words=fs.device.unfenced_words()))
        # forge n > MAX_COMMIT_PAGES with a recomputed (valid!) crc
        raw = bytearray(image[entry_off : entry_off + JOURNAL_ENTRY])
        struct.pack_into("<I", raw, 4, MAX_COMMIT_PAGES + 3)
        struct.pack_into(
            "<I", raw, 0, zlib.crc32(bytes(raw[4:])) & 0xFFFFFFFF
        )
        image[entry_off : entry_off + JOURNAL_ENTRY] = raw
        recovered = Nova.recover(NvmDevice.from_image(bytes(image)))
        assert recovered.open("f").size >= 0  # scanner skipped the entry

    def test_size_never_shrinks_on_stale_replay(self):
        """A stale entry (its retire word lost to the crash) replayed
        after a later op must not undo the newer, larger size."""
        fs, handle = mounted()
        handle.write(0, b"\x33" * (2 * PAGE))
        inode = handle.inode
        # fabricate an *unretired* old entry describing a 1-page file
        fs._journal_append(inode, PAGE, [(0, handle.page_table[0], 0)])
        fs.device.drain()
        recovered = Nova.recover(NvmDevice.from_image(bytes(fs.device.buffer.durable)))
        assert recovered.open("f").size == 2 * PAGE

    def test_recover_is_idempotent_with_live_entry(self):
        fs, entry_off = self._crash_mid_swing()
        image = bytes(fs.device.crash_image(persist_words=fs.device.unfenced_words()))
        d1 = NvmDevice.from_image(image)
        Nova.recover(d1)
        d1.drain()
        first = bytes(d1.buffer.durable)
        d2 = NvmDevice.from_image(first)
        Nova.recover(d2)
        d2.drain()
        assert bytes(d2.buffer.durable) == first

    def test_seq_continues_after_remount(self):
        """Remount must resume the sequence past every seq in the
        journal, retired or not — reuse would let recovery replay an
        old entry over a newer one."""
        fs, handle = mounted()
        handle.write(0, b"\x44" * PAGE)
        fs.device.drain()
        before = fs._journal_seq
        remounted = Nova.remount(NvmDevice.from_image(bytes(fs.device.buffer.durable)))
        assert remounted._journal_seq >= before
