"""Result export / regression diff."""

from __future__ import annotations

import json

from repro.bench.export import (
    diff_runs,
    export_run,
    table_to_csv,
    table_to_dict,
    table_to_json,
)
from repro.bench.harness import Table


def sample_table(value=100.0):
    t = Table(title="demo")
    t.set("MGSP", "4K", value)
    t.set("MGSP", "16K", value * 2)
    t.set("Ext4-DAX", "4K", 50.0)
    return t


class TestExport:
    def test_to_dict_parses_numbers(self):
        d = table_to_dict(sample_table())
        assert d["title"] == "demo"
        assert d["rows"]["MGSP"]["4K"] == 100.0
        assert d["columns"] == ["4K", "16K"]

    def test_to_dict_keeps_strings(self):
        t = Table(title="s")
        t.set("a", "x", "n/a")
        assert table_to_dict(t)["rows"]["a"]["x"] == "n/a"

    def test_json_roundtrip(self):
        d = json.loads(table_to_json(sample_table()))
        assert d["rows"]["Ext4-DAX"]["4K"] == 50.0

    def test_csv_layout(self):
        text = table_to_csv(sample_table())
        lines = text.strip().splitlines()
        assert lines[0] == ",4K,16K"
        assert lines[1].startswith("MGSP,")

    def test_export_run(self):
        blob = export_run([("fig08", sample_table())])
        assert json.loads(blob)["fig08"]["title"] == "demo"


class TestDiff:
    def test_no_drift(self):
        a = export_run([("e", sample_table())])
        assert diff_runs(a, a) == []

    def test_drift_detected(self):
        a = export_run([("e", sample_table(100.0))])
        b = export_run([("e", sample_table(130.0))])
        findings = diff_runs(a, b, tolerance=0.10)
        assert findings and "drifted" in findings[0]

    def test_within_tolerance_quiet(self):
        a = export_run([("e", sample_table(100.0))])
        b = export_run([("e", sample_table(105.0))])
        assert diff_runs(a, b, tolerance=0.10) == []

    def test_missing_table_and_cells(self):
        a = export_run([("e", sample_table()), ("gone", sample_table())])
        small = sample_table()
        small.rows["MGSP"].pop("16K")
        b = export_run([("e", small)])
        findings = diff_runs(a, b)
        assert any("gone" in f for f in findings)
        assert any("16K missing" in f for f in findings)

    def test_new_table_reported(self):
        a = export_run([("e", sample_table())])
        b = export_run([("e", sample_table()), ("fresh", sample_table())])
        assert any("fresh" in f for f in diff_runs(a, b))


class TestRealExperimentExport:
    def test_tab02_exports(self):
        from repro.bench.figures import tab02

        table = tab02(nops=40)
        d = table_to_dict(table)
        assert 1.5 < d["rows"]["Libnvmmio"]["4K"] < 2.5
        assert table_to_csv(table).count("\n") >= 4
