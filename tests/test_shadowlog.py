"""ShadowLog planner invariants: zero-copy, role switching, assembly."""

from __future__ import annotations

import pytest

from repro.core import bitmap
from repro.core.config import MgspConfig
from repro.core.radix import RadixTree, required_table_len
from repro.core.shadowlog import ShadowLog
from repro.fsapi.volume import Volume
from repro.nvm.allocator import LogAllocator
from repro.nvm.device import NvmDevice


def make_shadow(capacity=1 << 20, degree=16, **cfg):
    device = NvmDevice(32 << 20)
    volume = Volume(device)
    config = MgspConfig(degree=degree, **cfg)
    inode = volume.create("f", capacity, node_table_len=required_table_len(capacity, config))
    volume.set_size(inode, capacity)
    tree = RadixTree(device, inode, config)
    area = volume.layout.log_area
    alloc = LogAllocator(area.start, area.end)
    return ShadowLog(tree, device, alloc, inode, config), tree, device, inode


def apply_plan(shadow, plan):
    """Execute a plan the way MgspFile does (data, then commits)."""
    for node, word in plan.refreshes:
        shadow.tree.store_word(node, word)
    for node in plan.new_logs:
        shadow.tree.store_log_ptr(node, node.log_off)
    for off, payload in plan.data_writes:
        shadow.device.nt_store(off, payload)
    for node, word, _slot in plan.commits:
        shadow.tree.store_word(node, word)
    shadow.device.fence()


def write(shadow, offset, data):
    gen = shadow.tree.next_gen()
    plan = shadow.plan_write(offset, data, gen)
    apply_plan(shadow, plan)
    return plan


class TestZeroCopy:
    def test_aligned_write_moves_each_byte_once(self):
        shadow, _, _, _ = make_shadow()
        plan = write(shadow, 0, b"a" * 4096)
        assert sum(len(p) for _, p in plan.data_writes) == 4096

    def test_repeated_writes_alternate_targets(self):
        """Write the same leaf twice: first redo (to the leaf log), then
        undo-style (into the ancestor) — Fig 3's role switch."""
        shadow, tree, _, inode = make_shadow()
        p1 = write(shadow, 0, b"a" * 4096)
        p2 = write(shadow, 0, b"b" * 4096)
        (t1, _), (t2, _) = p1.data_writes[0], p2.data_writes[0]
        leaf = tree.peek(0, 0)
        assert t1 == leaf.log_off  # redo: into the leaf's log
        assert t2 == inode.base  # undo: straight into the file
        # Two writes, two block writes total: zero copy.
        assert sum(len(p) for _, p in p1.data_writes + p2.data_writes) == 8192

    def test_third_write_back_to_log(self):
        shadow, tree, _, _ = make_shadow()
        write(shadow, 0, b"a" * 4096)
        write(shadow, 0, b"b" * 4096)
        p3 = write(shadow, 0, b"c" * 4096)
        leaf = tree.peek(0, 0)
        assert p3.data_writes[0][0] == leaf.log_off

    def test_coarse_write_uses_one_log(self):
        shadow, tree, _, _ = make_shadow(degree=16)
        plan = write(shadow, 0, b"x" * (4096 * 16))  # exactly one L1 node
        assert len(plan.commits) == 1
        node, word, slot = plan.commits[0]
        assert node.level == 1
        assert not slot.is_leaf

    def test_multi_granularity_off_decomposes_to_leaves(self):
        shadow, _, _, _ = make_shadow(multi_granularity=False)
        plan = write(shadow, 0, b"x" * (4096 * 16))
        assert all(node.level == 0 for node, _, __ in plan.commits)
        assert len(plan.commits) == 16

    def test_sub_block_write_is_fine_grained(self):
        shadow, _, _, _ = make_shadow()
        plan = write(shadow, 0, b"x" * 128)  # one sub-block
        assert sum(len(p) for _, p in plan.data_writes) == 128

    def test_unaligned_write_rmw_bounded_by_sub_blocks(self):
        shadow, _, _, _ = make_shadow()
        plan = write(shadow, 100, b"x" * 20)  # inside sub-block 0
        assert sum(len(p) for _, p in plan.data_writes) == 128
        plan = write(shadow, 100, b"x" * 50)  # spans sub-blocks 0 and 1
        assert sum(len(p) for _, p in plan.data_writes) == 256

    def test_fine_grained_off_rounds_to_leaf(self):
        shadow, _, _, _ = make_shadow(fine_grained_logging=False)
        plan = write(shadow, 0, b"x" * 128)
        assert sum(len(p) for _, p in plan.data_writes) == 4096


class TestBitmapCommits:
    def test_leaf_mask_flips(self):
        shadow, tree, _, _ = make_shadow()
        write(shadow, 0, b"a" * 128)  # sub-block 0 -> leaf log
        leaf = tree.peek(0, 0)
        assert bitmap.unpack_leaf(leaf.word).mask == 0b1
        write(shadow, 0, b"b" * 128)  # role switch -> ancestor
        assert bitmap.unpack_leaf(leaf.word).mask == 0b0
        write(shadow, 128, b"c" * 128)
        assert bitmap.unpack_leaf(leaf.word).mask == 0b10

    def test_existing_bits_set_on_path(self):
        shadow, tree, _, _ = make_shadow()
        write(shadow, 0, b"a" * 4096)
        root = tree.root
        eff = bitmap.effective_nonleaf(root.word, 0)
        assert eff.existing

    def test_coarse_commit_invalidates_subtree_lazily(self):
        shadow, tree, _, _ = make_shadow(degree=16)
        write(shadow, 0, b"a" * 128)  # fine write materializes leaf 0
        leaf = tree.peek(0, 0)
        assert bitmap.effective_leaf(leaf.word, 0).mask == 0b1
        write(shadow, 0, b"b" * (4096 * 16))  # coarse write over it
        l1 = tree.peek(1, 0)
        sub_gen = bitmap.unpack_nonleaf(l1.word).sub_gen
        # The leaf's word was NOT touched (lazy), but it reads as dead.
        assert bitmap.unpack_leaf(leaf.word).mask == 0b1
        assert bitmap.effective_leaf(leaf.word, sub_gen).mask == 0


class TestReadAssembly:
    def test_reads_compose_all_sources(self):
        shadow, _, device, inode = make_shadow()
        device.buffer.store(inode.base, bytes(range(256)) * 16)  # base data
        device.buffer.drain()
        write(shadow, 100, b"\xaa" * 300)
        data, _ = shadow.read_range(0, 4096)
        expected = bytearray((bytes(range(256)) * 16)[:4096])
        expected[100:400] = b"\xaa" * 300
        assert data == bytes(expected)

    def test_read_beyond_writes_returns_zeros(self):
        shadow, _, _, _ = make_shadow()
        data, _ = shadow.read_range(8192, 100)
        assert data == b"\0" * 100

    def test_visits_counted(self):
        shadow, _, _, _ = make_shadow()
        write(shadow, 0, b"a" * 4096)
        _, visited = shadow.read_range(0, 4096)
        assert visited >= 2  # root + leaf at least


class TestWriteBack:
    def test_write_back_materializes_file(self):
        shadow, tree, device, inode = make_shadow()
        write(shadow, 0, b"a" * 4096)
        write(shadow, 10000, b"b" * 500)
        copied = shadow.write_back()
        assert copied > 0
        raw = device.buffer.load(inode.base, 11000)
        assert raw[:4096] == b"a" * 4096
        assert raw[10000:10500] == b"b" * 500

    def test_write_back_respects_freshness_order(self):
        shadow, tree, device, inode = make_shadow(degree=16)
        write(shadow, 0, b"old" * 1365 + b"x")  # fills ~4K
        write(shadow, 0, b"x" * (4096 * 16))  # coarse overwrite
        write(shadow, 0, b"new" + b"y" * 125)  # fine overwrite of 128B
        shadow.write_back()
        raw = device.buffer.load(inode.base, 4096)
        assert raw[:3] == b"new"
        assert raw[128:4096] == b"x" * (4096 - 128)

    def test_write_back_nothing_to_do(self):
        shadow, _, _, _ = make_shadow()
        assert shadow.write_back() == 0


class TestShadowOffAblation:
    def test_checkpoints_generated(self):
        shadow, _, _, _ = make_shadow(shadow_logging=False)
        gen = shadow.tree.next_gen()
        plan = shadow.plan_write(0, b"a" * 4096, gen)
        assert plan.checkpoints  # double write scheduled
