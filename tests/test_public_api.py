"""The public API surface stays importable and complete."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestTopLevel:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_core_symbols(self):
        from repro import (
            Ext4,
            Ext4Dax,
            Libnvmmio,
            MgspConfig,
            MgspFilesystem,
            MgspTransaction,
            Nova,
            NvmDevice,
            OpenFlags,
            OptaneTiming,
            Splitfs,
            recover,
            verify_file,
        )

        assert callable(recover) and callable(verify_file)

    @pytest.mark.parametrize(
        "module",
        [
            "repro.nvm",
            "repro.sim",
            "repro.fsapi",
            "repro.fs",
            "repro.core",
            "repro.db",
            "repro.workloads",
            "repro.bench",
            "repro.posix",
            "repro.inspect",
            "repro.shell",
            "repro.errors",
            "repro.util",
        ],
    )
    def test_subpackages_import(self, module):
        importlib.import_module(module)

    def test_every_public_module_has_docstring(self):
        import pathlib

        root = pathlib.Path(repro.__file__).parent
        for path in root.rglob("*.py"):
            module = path.read_text()
            assert module.lstrip().startswith(('"""', "'''")), path

    def test_registry_covers_all_filesystems(self):
        from repro.bench.registry import make_fs

        for name in ("Ext4-DAX", "Libnvmmio", "NOVA", "MGSP", "SplitFS",
                     "Ext4-wb", "Ext4-ordered", "Ext4-journal"):
            fs = make_fs(name, device_size=32 << 20)
            assert fs.name == name
