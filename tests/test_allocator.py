"""LogAllocator: alignment, reuse, splitting, exhaustion."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AllocationError
from repro.nvm.allocator import LogAllocator


class TestAlloc:
    def test_alignment(self):
        alloc = LogAllocator(1000, 1 << 20)
        for size in (4096, 8192, 65536):
            off = alloc.alloc(size)
            assert off % size == 0
            assert off >= 1000

    def test_rejects_non_power_of_two(self):
        alloc = LogAllocator(0, 1 << 20)
        with pytest.raises(AllocationError):
            alloc.alloc(3000)
        with pytest.raises(AllocationError):
            alloc.alloc(0)

    def test_free_reuse(self):
        alloc = LogAllocator(0, 1 << 20)
        a = alloc.alloc(4096)
        alloc.free(a, 4096)
        b = alloc.alloc(4096)
        assert b == a

    def test_distinct_until_freed(self):
        alloc = LogAllocator(0, 1 << 20)
        offs = {alloc.alloc(4096) for _ in range(16)}
        assert len(offs) == 16

    def test_split_from_larger_free_block(self):
        alloc = LogAllocator(0, 64 * 1024)
        big = alloc.alloc(32 * 1024)
        rest = alloc.alloc(16 * 1024)
        alloc.alloc(8 * 1024)
        alloc.alloc(4 * 1024)
        alloc.alloc(4 * 1024)
        # Region now full; freeing the 32K block must satisfy 4K allocs.
        alloc.free(big, 32 * 1024)
        small = alloc.alloc(4096)
        assert big <= small < big + 32 * 1024

    def test_exhaustion_raises(self):
        alloc = LogAllocator(0, 8192)
        alloc.alloc(4096)
        alloc.alloc(4096)
        with pytest.raises(AllocationError):
            alloc.alloc(4096)

    def test_accounting(self):
        alloc = LogAllocator(0, 1 << 20)
        a = alloc.alloc(4096)
        assert alloc.in_use == 4096
        assert alloc.peak_bytes == 4096
        alloc.free(a, 4096)
        assert alloc.in_use == 0
        assert alloc.peak_bytes == 4096

    def test_free_outside_region_rejected(self):
        alloc = LogAllocator(4096, 1 << 20)
        with pytest.raises(AllocationError):
            alloc.free(0, 4096)

    def test_reset(self):
        alloc = LogAllocator(0, 1 << 20)
        alloc.alloc(65536)
        alloc.reset()
        assert alloc.in_use == 0
        assert alloc.alloc(65536) == 0


@given(
    st.lists(
        st.sampled_from([4096, 8192, 16384, 65536]),
        min_size=1,
        max_size=40,
    )
)
def test_allocations_never_overlap(sizes):
    alloc = LogAllocator(0, 16 << 20)
    live = []
    for i, size in enumerate(sizes):
        off = alloc.alloc(size)
        for other_off, other_size in live:
            assert off + size <= other_off or other_off + other_size <= off
        live.append((off, size))
        if i % 3 == 2:  # free oldest occasionally to exercise reuse
            old_off, old_size = live.pop(0)
            alloc.free(old_off, old_size)
