"""DeviceStats redundant_flushes / redundant_fences counters, and the
before/after regression tests for the redundancy fixes the analyzer
surfaced (empty-rollback fence, empty-fsync fence, fresh-tree grow
fence)."""

from __future__ import annotations

from repro.core import MgspConfig, MgspFilesystem
from repro.fs import Libnvmmio
from repro.nvm.device import NvmDevice


def make_fs(**cfg):
    return MgspFilesystem(device_size=8 << 20, config=MgspConfig(degree=16, **cfg))


# -- counter semantics at the device level ---------------------------------


def test_flush_of_clean_line_counts_redundant():
    d = NvmDevice(1 << 20)
    d.store(0, b"x" * 64)
    base = d.stats.snapshot()
    d.flush(0, 64)  # dirty -> effective
    d.flush(0, 64)  # clean -> redundant
    delta = d.stats.delta(base)
    assert delta.redundant_flushes == 1


def test_fence_with_nothing_pending_counts_redundant():
    d = NvmDevice(1 << 20)
    base = d.stats.snapshot()
    d.fence()  # nothing stored yet
    d.store(0, b"x" * 64)
    d.flush(0, 64)
    d.fence()  # orders one pending line: effective
    delta = d.stats.delta(base)
    assert delta.fences == 2
    assert delta.redundant_fences == 1


def test_flush_v_counts_per_redundant_range():
    d = NvmDevice(1 << 20)
    d.store(0, b"x" * 64)
    d.persist(0, 64)
    d.store(128, b"y" * 64)
    base = d.stats.snapshot()
    d.flush_v(((0, 64), (128, 64)))  # first range clean, second dirty
    assert d.stats.delta(base).redundant_flushes == 1


def test_delta_subtracts_redundant_counters():
    d = NvmDevice(1 << 20)
    d.fence()
    base = d.stats.snapshot()
    assert d.stats.delta(base).redundant_fences == 0


# -- fixed site 1: empty-transaction rollback no longer fences -------------


def test_rollback_with_nothing_freed_issues_no_fence():
    fs = make_fs()
    f = fs.create("a", capacity=1 << 16)
    txn = fs.begin_transaction(f)
    base = fs.device.stats.snapshot()
    txn.rollback()
    delta = fs.device.stats.delta(base)
    assert delta.fences == 0
    assert delta.redundant_fences == 0


def test_rollback_that_frees_logs_fences_effectively():
    fs = make_fs()
    f = fs.create("a", capacity=1 << 16)
    txn = fs.begin_transaction(f)
    txn.write(0, b"t" * 4096)
    base = fs.device.stats.snapshot()
    txn.rollback()
    delta = fs.device.stats.delta(base)
    assert delta.fences >= 1  # pointer-zeroing must still be ordered
    assert delta.redundant_fences == 0
    assert f.read(0, 10) == b""  # write really rolled back


# -- fixed site 2: libnvmmio fsync with no pending entries -----------------


def test_libnvmmio_second_fsync_is_free():
    fs = Libnvmmio(device_size=8 << 20)
    f = fs.create("a", capacity=1 << 16)
    f.write(0, b"d" * 4096)
    f.fsync()
    base = fs.device.stats.snapshot()
    f.fsync()  # nothing new to checkpoint
    delta = fs.device.stats.delta(base)
    assert delta.fences == 0
    assert delta.redundant_fences == 0
    assert f.read(0, 4) == b"dddd"


# -- fixed site 3: fresh-tree growth no longer fences ----------------------


def test_first_write_issues_no_redundant_fence():
    # _ensure_height used to fence after grow_to even when growing a
    # fresh tree stored nothing; the whole first-write flow must now be
    # free of redundant flushes and fences.
    fs = make_fs()
    f = fs.create("a", capacity=1 << 16)
    base = fs.device.stats.snapshot()
    f.write(0, b"a" * 4096)
    delta = fs.device.stats.delta(base)
    assert delta.redundant_fences == 0
    assert delta.redundant_flushes == 0


def test_mgsp_steady_state_write_has_zero_redundancy():
    fs = make_fs()
    f = fs.create("a", capacity=1 << 20)
    for i in range(16):
        f.write(i * 4096, bytes([i + 1]) * 4096)
    f.fsync()
    base = fs.device.stats.snapshot()
    for i in range(16):
        f.write(i * 4096, bytes([i + 65]) * 4096)
    delta = fs.device.stats.delta(base)
    assert delta.redundant_flushes == 0
    assert delta.redundant_fences == 0
