"""Failure-atomic multi-write transactions (the paper's future work)."""

from __future__ import annotations

import random

import pytest

from repro.core import MgspConfig, MgspFilesystem, recover
from repro.core.verify import verify_file
from repro.errors import CrashRequested, FsError, TransactionError
from repro.nvm.crash import CrashPlan
from repro.nvm.device import NvmDevice

CAP = 512 * 1024


def make_fs():
    return MgspFilesystem(device_size=64 << 20, config=MgspConfig(degree=16))


@pytest.fixture
def setup():
    fs = make_fs()
    f = fs.create("t", capacity=CAP)
    f.write(0, b"\x10" * 64 * 1024)  # committed base data
    fs.device.drain()
    return fs, f


class TestBasics:
    def test_commit_applies_all(self, setup):
        fs, f = setup
        txn = fs.begin_transaction(f)
        txn.write(0, b"AAAA")
        txn.write(40_000, b"BBBB")
        txn.commit()
        assert f.read(0, 4) == b"AAAA"
        assert f.read(40_000, 4) == b"BBBB"

    def test_rollback_discards_all(self, setup):
        fs, f = setup
        txn = fs.begin_transaction(f)
        txn.write(0, b"AAAA")
        txn.write(40_000, b"BBBB")
        txn.rollback()
        assert f.read(0, 4) == b"\x10" * 4
        assert f.read(40_000, 4) == b"\x10" * 4

    def test_txn_reads_own_writes(self, setup):
        fs, f = setup
        txn = fs.begin_transaction(f)
        txn.write(100, b"inside")
        assert txn.read(100, 6) == b"inside"
        txn.rollback()
        assert f.read(100, 6) == b"\x10" * 6

    def test_repeated_writes_to_same_range(self, setup):
        fs, f = setup
        txn = fs.begin_transaction(f)
        for value in (b"1111", b"2222", b"3333"):
            txn.write(0, value)
            assert txn.read(0, 4) == value
        txn.commit()
        assert f.read(0, 4) == b"3333"

    def test_repeated_writes_then_rollback(self, setup):
        fs, f = setup
        txn = fs.begin_transaction(f)
        for value in (b"1111", b"2222"):
            txn.write(0, value)
        txn.rollback()
        assert f.read(0, 4) == b"\x10" * 4

    def test_growing_write_stages_size(self, setup):
        fs, f = setup
        old = f.size
        txn = fs.begin_transaction(f)
        txn.write(200_000, b"tail")
        assert f.size == 200_004
        txn.rollback()
        assert f.size == old
        txn2 = fs.begin_transaction(f)
        txn2.write(200_000, b"tail")
        txn2.commit()
        assert f.size == 200_004
        assert f.read(200_000, 4) == b"tail"

    def test_closed_txn_rejected(self, setup):
        fs, f = setup
        txn = fs.begin_transaction(f)
        txn.commit()
        with pytest.raises(TransactionError):
            txn.write(0, b"x")
        with pytest.raises(TransactionError):
            txn.commit()
        with pytest.raises(TransactionError):
            txn.rollback()

    def test_out_of_bounds_rejected(self, setup):
        fs, f = setup
        txn = fs.begin_transaction(f)
        with pytest.raises(FsError):
            txn.write(CAP - 1, b"xx")
        txn.rollback()

    def test_context_manager(self, setup):
        fs, f = setup
        with fs.begin_transaction(f) as txn:
            txn.write(0, b"ctxm")
        assert f.read(0, 4) == b"ctxm"
        with pytest.raises(RuntimeError):
            with fs.begin_transaction(f) as txn:
                txn.write(0, b"oops")
                raise RuntimeError
        assert f.read(0, 4) == b"ctxm"

    def test_large_txn_chains_entries(self, setup):
        """More than 12 touched leaves -> multiple chained entries."""
        fs, f = setup
        txn = fs.begin_transaction(f)
        for i in range(40):
            txn.write(i * 4096, bytes([i + 1]) * 100)
        txn.commit()
        for i in range(40):
            assert f.read(i * 4096, 100) == bytes([i + 1]) * 100

    def test_state_verifies_after_txn(self, setup):
        fs, f = setup
        with fs.begin_transaction(f) as txn:
            for i in range(10):
                txn.write(i * 7000, b"z" * 300)
        report = verify_file(f)
        assert report.ok, report.errors

    def test_normal_writes_still_work_after_txn(self, setup):
        fs, f = setup
        with fs.begin_transaction(f) as txn:
            txn.write(0, b"txn!")
        f.write(4, b"norm")
        assert f.read(0, 8) == b"txn!norm"


class TestTxnCrashAtomicity:
    def _run(self, crash_after, n_writes=6, seed=5):
        fs = make_fs()
        f = fs.create("t", capacity=CAP)
        base = bytes([0x10]) * (64 * 1024)
        f.write(0, base)
        fs.device.drain()
        rng = random.Random(seed)
        writes = []
        for i in range(n_writes):
            off = rng.randrange(0, 60_000)
            writes.append((off, bytes([0xA0 + i]) * 500))
        fs.device.crash_plan = CrashPlan(crash_after)
        crashed = False
        try:
            txn = fs.begin_transaction(f)
            for off, payload in writes:
                txn.write(off, payload)
            txn.commit()
        except CrashRequested:
            crashed = True
        image = fs.device.crash_image(rng=random.Random(crash_after), persist_probability=0.5)
        fs2, stats = recover(NvmDevice.from_image(bytes(image)), config=MgspConfig(degree=16))
        got = fs2.open("t").read(0, 64 * 1024)

        old = bytearray(base)
        new = bytearray(base)
        for off, payload in writes:
            new[off : off + len(payload)] = payload
        return crashed, got == bytes(old), got == bytes(new), stats

    def test_all_or_nothing_across_crash_points(self):
        saw_old = saw_new = 0
        for crash_after in range(2, 700, 41):
            crashed, is_old, is_new, _ = self._run(crash_after)
            if not crashed:
                saw_new += 1
                assert is_new
                continue
            assert is_old or is_new, f"torn transaction at crash point {crash_after}"
            saw_old += is_old
            saw_new += is_new
        assert saw_old > 0  # some crash points rolled back
        assert saw_new > 0  # some crash points committed

    def test_orphan_members_discarded(self):
        """Crash after member entries persist but before the commit
        entry: recovery must discard the orphans."""
        fs = make_fs()
        f = fs.create("t", capacity=CAP)
        f.write(0, b"\x10" * 64 * 1024)
        fs.device.drain()
        txn = fs.begin_transaction(f)
        for i in range(40):  # enough for several chained entries
            txn.write(i * 4096, bytes([i + 1]) * 100)
        # Crash inside commit, right after the first member entry's fence.
        fs.device.crash_plan = CrashPlan(crash_after=0, kinds={"fence"})
        with pytest.raises(CrashRequested):
            txn.commit()
        image = fs.device.crash_image(rng=random.Random(1), persist_probability=1.0)
        fs2, stats = recover(NvmDevice.from_image(bytes(image)), config=MgspConfig(degree=16))
        got = fs2.open("t").read(0, 64 * 1024)
        assert got == b"\x10" * 64 * 1024  # fully rolled back
        assert stats.entries_discarded >= 0
