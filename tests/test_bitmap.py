"""Packed node words and generation-based staleness resolution."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core import bitmap

gens = st.integers(0, bitmap.GEN_MASK)
masks = st.integers(0, 0xFFFFFFFF)


class TestPacking:
    @given(st.booleans(), st.booleans(), gens, gens)
    def test_nonleaf_roundtrip(self, valid, existing, sub, own):
        word = bitmap.pack_nonleaf(valid, existing, sub, own)
        bits = bitmap.unpack_nonleaf(word)
        assert bits == (valid, existing, sub, own)

    @given(masks, gens)
    def test_leaf_roundtrip(self, mask, own):
        word = bitmap.pack_leaf(mask, own)
        bits = bitmap.unpack_leaf(word)
        assert bits == (mask, own)

    @given(st.booleans(), st.booleans(), gens, gens)
    def test_word_fits_atomic_unit(self, valid, existing, sub, own):
        word = bitmap.pack_nonleaf(valid, existing, sub, own)
        assert 0 <= word < (1 << 64)

    def test_zero_word_is_inert(self):
        bits = bitmap.unpack_nonleaf(0)
        assert not bits.valid and not bits.existing
        assert bits.sub_gen == 0 and bits.own_gen == 0
        assert bitmap.unpack_leaf(0).mask == 0


class TestEffectiveBits:
    def test_fresh_word_passes_through(self):
        word = bitmap.pack_nonleaf(True, True, 5, 10)
        eff = bitmap.effective_nonleaf(word, path_gen=7)
        assert eff.valid and eff.existing
        assert eff.sub_gen == 7  # lifted to the path gen

    def test_stale_word_reads_as_dead(self):
        word = bitmap.pack_nonleaf(True, True, 5, 10)
        eff = bitmap.effective_nonleaf(word, path_gen=11)
        assert not eff.valid and not eff.existing
        assert eff.sub_gen == 11

    def test_equal_gen_is_fresh(self):
        word = bitmap.pack_nonleaf(True, False, 3, 10)
        eff = bitmap.effective_nonleaf(word, path_gen=10)
        assert eff.valid

    def test_leaf_staleness(self):
        word = bitmap.pack_leaf(0xFF, 4)
        assert bitmap.effective_leaf(word, 4).mask == 0xFF
        assert bitmap.effective_leaf(word, 5).mask == 0

    @given(st.booleans(), st.booleans(), gens, gens, gens)
    def test_effective_sub_gen_never_below_path(self, valid, existing, sub, own, path):
        word = bitmap.pack_nonleaf(valid, existing, sub, own)
        eff = bitmap.effective_nonleaf(word, path)
        assert eff.sub_gen >= path

    @given(gens, gens)
    def test_lazy_cleaning_invariant(self, g_commit, g_old):
        """A coarse commit at gen G invalidates any descendant word whose
        own_gen < G — without touching the descendant."""
        child = bitmap.pack_nonleaf(True, True, g_old, g_old)
        eff = bitmap.effective_nonleaf(child, path_gen=g_commit)
        if g_old < g_commit:
            assert not eff.valid and not eff.existing
        else:
            assert eff.valid


class TestMaskHelpers:
    def test_mask_for_range(self):
        assert bitmap.mask_for_range(0, 4) == 0b1111
        assert bitmap.mask_for_range(2, 5) == 0b11100
        assert bitmap.mask_for_range(3, 3) == 0
        assert bitmap.mask_for_range(5, 2) == 0

    def test_iter_mask_runs(self):
        assert list(bitmap.iter_mask_runs(0b0110_1001, 8)) == [(0, 1), (3, 4), (5, 7)]
        assert list(bitmap.iter_mask_runs(0, 8)) == []
        assert list(bitmap.iter_mask_runs(0xFF, 8)) == [(0, 8)]

    @given(masks)
    def test_runs_reconstruct_mask(self, mask):
        mask &= 0xFFFFFFFF
        rebuilt = 0
        for start, end in bitmap.iter_mask_runs(mask, 32):
            rebuilt |= bitmap.mask_for_range(start, end)
        assert rebuilt == mask
