"""Array-native device core: bulk ``_v`` paths vs the op-by-op loop.

The bulk buffer paths (ISSUE 7) must be *invisible*: identical
``DeviceStats``, identical tracer cost segments, identical analysis-tap
event sequences, identical buffer state — including when a crash plan
fires mid-batch — and identical crash-image candidate order, so seeded
``choose_persist_words`` draws the same subset on either core.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CrashRequested, OutOfRangeError
from repro.nvm.crash import CrashPlan
from repro.nvm.device import NvmDevice

SIZE = 1 << 18


class RecordingTracer:
    """Duck-typed tracer capturing every cost segment as a tuple."""

    def __init__(self):
        self.events = []

    def io_cached(self, nbytes):
        self.events.append(("cached", nbytes))

    def io_write(self, nbytes):
        self.events.append(("write", nbytes))

    def io_read(self, nbytes):
        self.events.append(("read", nbytes))

    def io_flush(self, nlines):
        self.events.append(("flush", nlines))

    def io_fence(self):
        self.events.append(("fence",))


class RecordingTap:
    """Duck-typed analysis tap capturing the persistence-event stream."""

    def __init__(self):
        self.events = []

    def on_store(self, offset, length, kind):
        self.events.append(("store", offset, length, kind))

    def on_flush(self, offset, length, nlines):
        self.events.append(("flush", offset, length, nlines))

    def on_fence(self):
        self.events.append(("fence",))

    def on_drain(self):
        self.events.append(("drain",))


def full_stats(device):
    return tuple(sorted(vars(device.stats).items()))


def buffer_state(device):
    buf = device.buffer
    return (
        bytes(buf.working),
        bytes(buf.durable),
        buf.unfenced_words(),
        buf.has_pending(),
    )


# Op batches: each entry is (kind, payload list) applied via one _v call
# on the batched device and an op-by-op loop on the reference device.
ops_strategy = st.lists(
    st.one_of(
        st.tuples(
            st.just("store_v"),
            st.lists(
                st.tuples(st.integers(0, SIZE - 256), st.integers(1, 200)),
                min_size=1,
                max_size=5,
            ),
        ),
        st.tuples(
            st.just("nt_store_v"),
            st.lists(
                st.tuples(st.integers(0, SIZE - 256), st.integers(1, 200)),
                min_size=1,
                max_size=5,
            ),
        ),
        st.tuples(
            st.just("flush_v"),
            st.lists(
                st.tuples(st.integers(0, SIZE - 256), st.integers(1, 200)),
                min_size=1,
                max_size=5,
            ),
        ),
        st.tuples(st.just("fence"), st.just([])),
    ),
    min_size=1,
    max_size=12,
)


def payload_for(offset, length, salt):
    rng = random.Random(offset * 1_000_003 + length * 97 + salt)
    return rng.randbytes(length)


def apply_batched(device, ops):
    for i, (kind, items) in enumerate(ops):
        if kind == "store_v":
            device.store_v([(off, payload_for(off, ln, i)) for off, ln in items])
        elif kind == "nt_store_v":
            device.nt_store_v([(off, payload_for(off, ln, i)) for off, ln in items])
        elif kind == "flush_v":
            device.flush_v(items)
        else:
            device.fence()


def apply_op_by_op(device, ops):
    for i, (kind, items) in enumerate(ops):
        if kind == "store_v":
            for off, ln in items:
                device.store(off, payload_for(off, ln, i))
        elif kind == "nt_store_v":
            for off, ln in items:
                device.nt_store(off, payload_for(off, ln, i))
        elif kind == "flush_v":
            for off, ln in items:
                device.flush(off, ln)
        else:
            device.fence()


class TestBulkPathParity:
    @given(ops_strategy)
    @settings(max_examples=60, deadline=None)
    def test_stats_state_and_crash_candidates_match(self, ops):
        batched = NvmDevice(SIZE)
        reference = NvmDevice(SIZE)
        apply_batched(batched, ops)
        apply_op_by_op(reference, ops)
        assert full_stats(batched) == full_stats(reference)
        assert buffer_state(batched) == buffer_state(reference)
        # Same candidates in the same order -> same seeded crash image.
        image_b = batched.crash_image(rng=random.Random(7))
        image_r = reference.crash_image(rng=random.Random(7))
        assert bytes(image_b) == bytes(image_r)

    @given(ops_strategy)
    @settings(max_examples=40, deadline=None)
    def test_candidate_order_is_ascending_and_complete(self, ops):
        device = NvmDevice(SIZE)
        apply_batched(device, ops)
        words = device.unfenced_words()
        assert words == sorted(words)
        assert len(words) == len(set(words))
        assert words == device.buffer._unfenced_words_full_scan()

    @given(ops_strategy)
    @settings(max_examples=25, deadline=None)
    def test_tracer_segments_match(self, ops):
        batched = NvmDevice(SIZE)
        reference = NvmDevice(SIZE)
        batched.tracer = RecordingTracer()
        reference.tracer = RecordingTracer()
        apply_batched(batched, ops)
        apply_op_by_op(reference, ops)
        assert batched.tracer.events == reference.tracer.events
        assert full_stats(batched) == full_stats(reference)

    @given(ops_strategy)
    @settings(max_examples=25, deadline=None)
    def test_analysis_tap_events_match(self, ops):
        batched = NvmDevice(SIZE)
        reference = NvmDevice(SIZE)
        batched.analysis_tap = RecordingTap()
        reference.analysis_tap = RecordingTap()
        apply_batched(batched, ops)
        apply_op_by_op(reference, ops)
        assert batched.analysis_tap.events == reference.analysis_tap.events
        assert full_stats(batched) == full_stats(reference)


class TestPartialBatchCrashParity:
    @given(ops_strategy, st.integers(0, 40))
    @settings(max_examples=40, deadline=None)
    def test_mid_batch_crash_leaves_identical_state(self, ops, crash_after):
        batched = NvmDevice(SIZE)
        reference = NvmDevice(SIZE)
        batched.crash_plan = CrashPlan(crash_after)
        reference.crash_plan = CrashPlan(crash_after)
        fired_b = fired_r = False
        try:
            apply_batched(batched, ops)
        except CrashRequested:
            fired_b = True
        try:
            apply_op_by_op(reference, ops)
        except CrashRequested:
            fired_r = True
        assert fired_b == fired_r
        assert full_stats(batched) == full_stats(reference)
        assert buffer_state(batched) == buffer_state(reference)
        image_b = batched.crash_image(rng=random.Random(11))
        image_r = reference.crash_image(rng=random.Random(11))
        assert bytes(image_b) == bytes(image_r)


class TestBulkErrorParity:
    """A bad element mid-batch must leave the same partial state and the
    same exception as the op-by-op loop (the bulk path validates first
    and falls back)."""

    def test_store_v_partial_application(self):
        batched = NvmDevice(SIZE)
        reference = NvmDevice(SIZE)
        writes = [(0, b"a" * 64), (128, b"b" * 64), (SIZE - 8, b"c" * 64)]
        with pytest.raises(OutOfRangeError):
            batched.store_v(writes)
        for off, data in writes[:2]:
            reference.store(off, data)
        with pytest.raises(OutOfRangeError):
            reference.store(*writes[2])
        assert full_stats(batched) == full_stats(reference)
        assert buffer_state(batched) == buffer_state(reference)

    def test_nt_store_v_partial_application(self):
        batched = NvmDevice(SIZE)
        reference = NvmDevice(SIZE)
        writes = [(0, b"a" * 64), (SIZE - 8, b"c" * 64), (128, b"b" * 64)]
        with pytest.raises(OutOfRangeError):
            batched.nt_store_v(writes)
        reference.nt_store(*writes[0])
        with pytest.raises(OutOfRangeError):
            reference.nt_store(*writes[1])
        assert full_stats(batched) == full_stats(reference)
        assert buffer_state(batched) == buffer_state(reference)
