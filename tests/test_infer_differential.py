"""Differential test: hand-written analyzer rules vs. inference (ISSUE 6).

``repro.analysis`` ships three hand-coded ordering rules for MGSP
(commit-before-data, torn-multiword, unfenced-at-boundary). Inference
knows none of them — it mines whatever the traces exhibit. On the same
sync-MGSP fio replay the two must agree:

- the analyzer finds no ``commit-before-data`` error, and inference
  *confirms* the discipline behind the rule as fence-enforced
  persist-before(data/log -> metalog) invariants;
- the analyzer finds no ``torn-multiword`` error, and inference mines
  no in-trace-torn region — while going further: it grades each
  region's residual pre-fence tear window and falsifies it;
- the analyzer *exempts* MGSP's deliberately-unfenced metalog retire
  from ``unfenced-at-boundary``; inference, with no baked-in exemption,
  rediscovers exactly that one region as the sole fenced-by-op-end
  violation.

A rule the analyzer enforces that inference failed to rediscover (or
vice versa) fails here — the two oracles keep each other honest.
"""

from __future__ import annotations

import pytest

from repro.analysis.harness import run_workload

from repro.infer.falsify import falsify
from repro.infer.miner import NEVER_TORN, PERSIST_BEFORE, mine
from repro.infer.subjects import collect_traces, resolve

MGSP_REGIONS = {"superblock", "node_tables", "metalog", "log_area", "data_area"}


@pytest.fixture(scope="module")
def analyzer_report():
    return run_workload("fio", "mgsp-sync")


@pytest.fixture(scope="module")
def inference():
    """(candidate, verdict-status) by key for the same subject."""
    workload_name, config_name = resolve("mgsp", "fio")
    traces = collect_traces(workload_name, config_name, runs=3)
    candidates = mine(traces)
    verdicts = falsify(
        candidates, workload_name, config_name, "mgsp", budget=120, seed=7
    )
    return {v.candidate.key: v for v in verdicts}


class TestCommitBeforeData:
    def test_analyzer_is_clean(self, analyzer_report):
        assert analyzer_report.parity_ok
        assert not [f for f in analyzer_report.errors if f.rule == "commit-before-data"]

    def test_inference_rediscovers_the_rule(self, inference):
        """The rule's contract — guarded data durable before the commit
        entry — is mined as *confirmed, fence-enforced* orderings into
        the metalog from both data paths."""
        for a in ("data_area", "log_area"):
            v = inference[(PERSIST_BEFORE, a, "metalog")]
            assert v.status == "confirmed", (a, v.reason)
            assert v.candidate.durability == "durable"

    def test_no_guarded_ordering_into_metalog_is_refuted(self, inference):
        """Agreement in the other direction: every region the commit
        entry guards (data, log, node tables) reaches the metalog only
        through a confirmed ordering — none is violated or merely-benign.
        (Reverse-direction candidates like superblock -> metalog are
        legitimately trace-refuted; the rule never demanded them.)"""
        for a in ("data_area", "log_area", "node_tables"):
            v = inference[(PERSIST_BEFORE, a, "metalog")]
            assert v.status in ("confirmed", "below-support"), (a, v.status)


class TestTornMultiword:
    def test_analyzer_is_clean(self, analyzer_report):
        assert not [f for f in analyzer_report.errors if f.rule == "torn-multiword"]

    def test_inference_mines_no_in_trace_tear(self, inference):
        torn = [
            key
            for (key, v) in inference.items()
            if key[0] == NEVER_TORN and v.candidate.violations > 0
        ]
        assert torn == []

    def test_inference_grades_the_residual_windows(self, inference):
        """Beyond the analyzer: single-word regions come out structurally
        durable, wide-nt regions carry a pre-fence window that
        falsification proves recovery tolerates (crc/rollback guards)."""
        for region in ("node_tables", "superblock"):
            v = inference[(NEVER_TORN, region, "")]
            assert v.status == "confirmed"
            assert v.candidate.durability == "durable"
        for region in ("metalog", "log_area", "data_area"):
            v = inference[(NEVER_TORN, region, "")]
            assert v.status == "retired-benign"
            assert v.candidate.durability == "pending"


class TestUnfencedAtBoundary:
    def test_analyzer_exempts_the_metalog_retire(self, analyzer_report):
        assert not [
            f for f in analyzer_report.errors if f.rule == "unfenced-at-boundary"
        ]

    def test_inference_rediscovers_the_exemption_site(self, inference):
        """The analyzer's hand-coded metalog exemption is exactly the one
        region inference flags as violating fenced-by-op-end — same
        knowledge, learned from the trace instead of written down."""
        violated = [
            key[1]
            for (key, v) in inference.items()
            if key[0] == "fenced-by-op-end" and v.status == "violated-in-trace"
        ]
        assert violated == ["metalog"]
        # the retire is atomic+flushed but unfenced: flushed-not-fenced
        witness = inference[("fenced-by-op-end", "metalog", "")].candidate.violation_witness
        assert witness is not None and witness["level"] == "pending"

    def test_all_other_regions_fence_by_op_end(self, inference):
        for region in MGSP_REGIONS - {"metalog"}:
            v = inference[("fenced-by-op-end", region, "")]
            assert v.status == "confirmed", (region, v.status)
