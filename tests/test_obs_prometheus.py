"""Prometheus exposition-format conformance for the telemetry exporter.

Checks the format contract a real scraper relies on: every metric
family carries ``# HELP`` and ``# TYPE`` headers before its first
sample, label values are escaped per the text format (backslash,
double-quote, line feed), histogram buckets are cumulative and end in
``+Inf``, and every sample line parses.
"""

from __future__ import annotations

import re

from repro.obs.exporters import to_prometheus
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import Telemetry

#: one label: name="value" with only escaped specials inside the quotes
_LABEL = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*"'
#: sample line: name{labels}? value
_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    rf"(\{{{_LABEL}(,{_LABEL})*\}})?"
    r" -?[0-9.eE+-]+$"
)


def _telemetry():
    tel = Telemetry(registry=MetricsRegistry())
    reg = tel.registry
    reg.counter("writes_total", layer="data").inc(3)
    reg.counter("writes_total", layer="log").inc(1)
    reg.gauge("depth").set(2)
    hist = reg.histogram("latency_ns", buckets=(10.0, 100.0))
    for v in (5, 50, 500):
        hist.observe(v)
    return tel


def test_help_and_type_for_every_family():
    text = to_prometheus(_telemetry())
    lines = text.splitlines()
    suffixes = ("_bucket", "_sum", "_count")
    for family in ("writes_total", "depth", "latency_ns"):
        help_idx = [i for i, l in enumerate(lines)
                    if l.startswith(f"# HELP {family} ")]
        type_idx = [i for i, l in enumerate(lines)
                    if l.startswith(f"# TYPE {family} ")]
        assert len(help_idx) == 1 and len(type_idx) == 1
        assert help_idx[0] == type_idx[0] - 1  # HELP immediately precedes TYPE
        first_sample = min(
            i for i, l in enumerate(lines)
            if not l.startswith("#")
            and l.split("{")[0].split(" ")[0] in
            {family, *(family + s for s in suffixes)}
        )
        assert type_idx[0] < first_sample


def test_label_value_escaping():
    tel = Telemetry(registry=MetricsRegistry())
    tel.registry.counter(
        "weird_total", path='a"b\\c\nd'
    ).inc()
    text = to_prometheus(tel)
    [sample] = [l for l in text.splitlines() if l.startswith("weird_total{")]
    assert sample == 'weird_total{path="a\\"b\\\\c\\nd"} 1'
    # no raw newline survives inside the rendered line
    assert "\nd" not in sample


def test_histogram_buckets_cumulative_with_inf():
    text = to_prometheus(_telemetry())
    buckets = [
        line for line in text.splitlines() if line.startswith("latency_ns_bucket")
    ]
    counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
    assert counts == sorted(counts)  # cumulative
    assert 'le="+Inf"' in buckets[-1]
    assert counts[-1] == 3
    assert "latency_ns_sum 555" in text
    assert "latency_ns_count 3" in text


def test_every_line_parses():
    text = to_prometheus(_telemetry())
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            assert re.match(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$", line)
        else:
            assert _SAMPLE.match(line), f"malformed sample line: {line!r}"


def test_real_run_conforms():
    from repro.obs.harness import run_workload

    tel = run_workload("toy-misordered", "sync").telemetry
    text = to_prometheus(tel)
    assert text.endswith("\n")
    for line in text.splitlines():
        if line and not line.startswith("#"):
            assert _SAMPLE.match(line), f"malformed sample line: {line!r}"
