"""Database engine: pager tx semantics, WAL, journal modes, crashes."""

from __future__ import annotations

import random

import pytest

from repro.core import MgspConfig, MgspFilesystem, recover
from repro.db import Database
from repro.db.pager import PAGE_SIZE, Pager
from repro.db.wal import WriteAheadLog
from repro.errors import CrashRequested, DbError, SchemaError, TransactionError
from repro.fs import Ext4Dax
from repro.nvm.crash import CrashPlan
from repro.nvm.device import NvmDevice


def dax_fs():
    return Ext4Dax(device_size=96 << 20)


class TestPager:
    def test_read_write_roundtrip(self):
        fs = dax_fs()
        pager = Pager(fs.create("f", 1 << 20))
        pager.write(3, b"page three")
        assert bytes(pager.read(3)[:10]) == b"page three"

    def test_rollback_restores_before_images(self):
        fs = dax_fs()
        pager = Pager(fs.create("f", 1 << 20))
        pager.write(0, b"original")
        pager.take_dirty()
        pager.write(0, b"modified")
        pager.rollback()
        assert bytes(pager.read(0)[:8]) == b"original"

    def test_rollback_discards_fresh_pages(self):
        fs = dax_fs()
        pager = Pager(fs.create("f", 1 << 20))
        pager.write(0, b"a")
        pager.take_dirty()
        before = pager.page_count
        pager.allocate()
        pager.allocate()
        pager.rollback()
        assert pager.page_count == before

    def test_take_dirty_clears_tracking(self):
        fs = dax_fs()
        pager = Pager(fs.create("f", 1 << 20))
        pager.write(1, b"x")
        dirty = pager.take_dirty()
        assert list(dirty) == [1]
        assert pager.take_dirty() == {}

    def test_oversized_page_rejected(self):
        fs = dax_fs()
        pager = Pager(fs.create("f", 1 << 20))
        with pytest.raises(DbError):
            pager.write(0, b"x" * (PAGE_SIZE + 1))

    def test_eviction_prefers_clean_pages(self):
        fs = dax_fs()
        pager = Pager(fs.create("f", 1 << 20), cache_pages=3)
        pager.write(0, b"dirty")
        for i in range(1, 10):
            pager.write(i, b"x")
            pager.take_dirty()  # mark committed -> clean, evictable
            pager.flush_to_file({i: b"x"})
        pager.write(0, b"dirty")  # still intact
        assert 0 in pager.cache


class TestWal:
    def test_commit_then_recover(self):
        fs = dax_fs()
        db_file = fs.create("d", 1 << 20)
        wal_file = fs.create("w", 1 << 20)
        wal = WriteAheadLog(wal_file)
        wal.commit({2: b"two" * 100, 5: b"five" * 100})
        # Simulate reopen: replay into the db file.
        recovered = WriteAheadLog.recover(fs.open("w"), db_file)
        assert db_file.read(2 * PAGE_SIZE, 6) == b"twotwo"
        assert recovered.frames_since_checkpoint == {}

    def test_checkpoint_pushes_and_resets(self):
        fs = dax_fs()
        db_file = fs.create("d", 1 << 20)
        wal = WriteAheadLog(fs.create("w", 1 << 20))
        wal.commit({1: b"one" * 50})
        count = wal.checkpoint(db_file)
        assert count == 1
        assert db_file.read(PAGE_SIZE, 3) == b"one"
        assert wal.tail < PAGE_SIZE

    def test_stale_salt_ignored_after_checkpoint(self):
        fs = dax_fs()
        db_file = fs.create("d", 1 << 20)
        wal = WriteAheadLog(fs.create("w", 1 << 20))
        wal.commit({1: b"AAA" * 100})
        wal.checkpoint(db_file)
        wal.commit({2: b"BBB" * 100})
        recovered = WriteAheadLog.recover(fs.open("w"), db_file)
        # Only the new-salt frame replays; the old one was checkpointed
        # already (and its frame bytes are stale).
        assert db_file.read(2 * PAGE_SIZE, 3) == b"BBB"

    def test_uncommitted_frames_not_replayed(self):
        fs = dax_fs()
        db_file = fs.create("d", 1 << 20)
        wal_file = fs.create("w", 1 << 20)
        wal = WriteAheadLog(wal_file)
        wal.commit({1: b"ok" * 100})
        # Append a frame with no commit record (torn transaction).
        import struct
        from repro.db.wal import _FRAME, FRAME_MAGIC
        from repro.util import checksum as crc

        img = (b"torn" * 1024)[:PAGE_SIZE]
        frame = _FRAME.pack(FRAME_MAGIC, wal.salt, 7, crc(img)) + img
        wal_file.write(wal.tail, frame)
        WriteAheadLog.recover(fs.open("w"), db_file)
        assert db_file.read(PAGE_SIZE, 2) == b"ok"
        assert db_file.read(7 * PAGE_SIZE, 4) != b"torn"

    def test_lookup_serves_committed_frames(self):
        fs = dax_fs()
        wal = WriteAheadLog(fs.create("w", 1 << 20))
        wal.commit({3: b"findme" + b"\0" * (PAGE_SIZE - 6)})
        assert wal.lookup(3)[:6] == b"findme"
        assert wal.lookup(4) is None


class TestDatabase:
    def test_journal_mode_validation(self):
        with pytest.raises(DbError):
            Database(dax_fs(), journal_mode="rollback")

    def test_autocommit_per_statement(self):
        db = Database(dax_fs(), journal_mode="wal")
        t = db.create_table("t")
        t.insert((1,), ("a",))
        assert db.committed_txns >= 1

    def test_explicit_transaction(self):
        db = Database(dax_fs(), journal_mode="wal")
        t = db.create_table("t")
        db.begin()
        t.insert((1,), ("a",))
        t.insert((2,), ("b",))
        db.commit()
        assert t.get((1,)) == ("a",)
        assert t.get((2,)) == ("b",)

    def test_rollback_undoes_changes(self):
        db = Database(dax_fs(), journal_mode="wal")
        t = db.create_table("t")
        t.insert((1,), ("keep",))
        db.begin()
        t.insert((2,), ("discard",))
        t.update((1,), ("clobbered",))
        db.rollback()
        assert t.get((1,)) == ("keep",)
        assert t.get((2,)) is None

    def test_nested_begin_rejected(self):
        db = Database(dax_fs())
        db.begin()
        with pytest.raises(TransactionError):
            db.begin()

    def test_commit_without_begin_rejected(self):
        db = Database(dax_fs())
        with pytest.raises(TransactionError):
            db.commit()

    def test_duplicate_table_rejected(self):
        db = Database(dax_fs())
        db.create_table("t")
        with pytest.raises(SchemaError):
            db.create_table("t")

    def test_missing_table_rejected(self):
        db = Database(dax_fs())
        with pytest.raises(SchemaError):
            db.table("ghost")

    @pytest.mark.parametrize("journal_mode", ["wal", "off"])
    def test_reopen_preserves_data(self, journal_mode):
        fs = dax_fs()
        db = Database(fs, journal_mode=journal_mode)
        t = db.create_table("t")
        for i in range(200):
            t.insert((i,), (f"row{i}", i * 1.5))
        db.close()
        db2 = Database(fs, journal_mode=journal_mode)
        t2 = db2.table("t")
        for i in range(0, 200, 17):
            assert t2.get((i,)) == (f"row{i}", i * 1.5)

    def test_scan_prefix(self):
        db = Database(dax_fs())
        t = db.create_table("t")
        for d in (1, 2):
            for c in range(5):
                t.insert((d, c), (d * 100 + c,))
        rows = [row for _, row in t.scan_prefix((1,))]
        assert rows == [(100 + c,) for c in range(5)]

    def test_wal_reopen_replays_unCheckpointed(self):
        fs = dax_fs()
        db = Database(fs, journal_mode="wal", checkpoint_limit=1 << 30)  # never checkpoint
        t = db.create_table("t")
        t.insert((1,), ("wal-only",))
        # Simulate a process exit WITHOUT close(): data lives in the WAL.
        fs.device.drain()
        db2 = Database(fs, journal_mode="wal")
        assert db2.table("t").get((1,)) == ("wal-only",)


class TestDatabaseCrashOnMgsp:
    def test_wal_commit_crash_recovers_all_or_nothing(self):
        """Crash MGSP mid WAL-commit; after FS recovery + DB reopen the
        transaction is atomic."""
        failures = 0
        for crash_after in range(5, 400, 45):
            fs = MgspFilesystem(device_size=96 << 20, config=MgspConfig(degree=16))
            db = Database(fs, journal_mode="wal")
            t = db.create_table("t")
            t.insert((0,), ("base",))
            fs.device.drain()
            fs.device.crash_plan = CrashPlan(crash_after)
            crashed = False
            try:
                db.begin()
                t.insert((1,), ("x" * 500,))
                t.insert((2,), ("y" * 500,))
                db.commit()
            except CrashRequested:
                crashed = True
            if not crashed:
                continue
            image = fs.device.crash_image(rng=random.Random(crash_after))
            fs2, _ = recover(NvmDevice.from_image(bytes(image)), config=MgspConfig(degree=16))
            db2 = Database(fs2, journal_mode="wal")
            t2 = db2.table("t")
            assert t2.get((0,)) == ("base",)
            one, two = t2.get((1,)), t2.get((2,))
            if not ((one is None and two is None) or (one is not None and two is not None)):
                failures += 1
        assert failures == 0
