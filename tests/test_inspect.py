"""Introspection helpers."""

from __future__ import annotations

from repro.core import MgspConfig, MgspFilesystem
from repro.inspect import (
    describe_device,
    describe_volume,
    dump_metalog,
    dump_tree,
    summarize_traces,
)


def make():
    fs = MgspFilesystem(device_size=64 << 20, config=MgspConfig(degree=16))
    handle = fs.create("probe", capacity=1 << 20)
    return fs, handle


class TestInspect:
    def test_describe_device(self):
        fs, handle = make()
        handle.write(0, b"x" * 4096)
        text = describe_device(fs.device)
        assert "stores" in text and "fences" in text

    def test_describe_device_reports_redundant_ops(self):
        fs, handle = make()
        handle.write(0, b"x" * 4096)
        fs.device.fence()
        fs.device.fence()  # nothing pending: counted as redundant
        text = describe_device(fs.device)
        assert "redundant" in text
        assert f"{fs.device.stats.redundant_fences:,} fences" in text

    def test_render_breakdown(self):
        from repro.inspect import render_breakdown

        rows = [("data", 750.0), ("log", 250.0), ("idle", 0.0)]
        text = render_breakdown(rows, 1000.0, unit="ns")
        lines = text.splitlines()
        assert lines[0].split() == ["layer", "ns", "%"]
        assert "75.0" in text and "25.0" in text
        assert "idle" in text  # zero rows are kept
        assert lines[-1].startswith("total")
        assert "1,000" in lines[-1]
        # Empty total renders without dividing by zero.
        assert "0.0" in render_breakdown([("x", 0.0)], 0.0)

    def test_describe_volume(self):
        fs, handle = make()
        text = describe_volume(fs.volume)
        assert "probe" in text and "log_area" in text

    def test_describe_empty_volume(self):
        fs = MgspFilesystem(device_size=64 << 20)
        assert "(none)" in describe_volume(fs.volume)

    def test_dump_tree_shows_nodes(self):
        fs, handle = make()
        handle.write(0, b"x" * 4096)
        handle.write(100_000, b"y" * 200)
        text = dump_tree(handle)
        assert "height=" in text
        assert "mask=" in text  # a leaf appears
        assert "log=" in text

    def test_dump_tree_truncates(self):
        fs, handle = make()
        for i in range(30):
            handle.write(i * 4096, b"z" * 4096)
        text = dump_tree(handle, max_nodes=5)
        assert "more)" in text

    def test_dump_metalog_empty(self):
        fs, _ = make()
        assert "empty" in dump_metalog(fs.metalog)

    def test_dump_metalog_live_entry(self):
        fs, handle = make()
        from repro.core.metalog import MetaSlot

        fs.metalog.write(2, handle.inode.id, 64, 1, 0, 4096, [MetaSlot(0, True, False, 1)])
        text = dump_metalog(fs.metalog)
        assert "live entries" in text and "ord=0" in text

    def test_dump_metalog_txn_entries(self):
        fs, handle = make()
        txn = fs.begin_transaction(handle)
        txn.write(0, b"a" * 100)
        # Peek mid-commit by writing the entries manually via commit; easier:
        # commit, then check the dump of an artificial txn entry.
        txn.commit()
        from repro.core.metalog import MetaSlot, TXN_COMMIT, TXN_MEMBER

        fs.metalog.write(
            3, handle.inode.id, 1, 2, 77, 4096, [MetaSlot(0, True, False, 1)],
            flags=TXN_MEMBER | TXN_COMMIT,
        )
        assert "txn-commit" in dump_metalog(fs.metalog)

    def test_summarize_traces(self):
        fs, handle = make()
        fs.take_traces()
        handle.write(0, b"x" * 4096)
        handle.fsync()
        handle.read(0, 4096)
        text = summarize_traces(fs.take_traces())
        assert "write" in text and "read" in text and "fsync" in text
