"""The paper's §IV-D caveat, demonstrated.

"Although MGSP provides file-system-level atomicity, it does not have a
transaction-level atomic mechanism" — a database in journal_mode=OFF
gets every *page write* atomic, but a multi-page commit can still tear
across a crash. The txn extension (repro.core.txn) closes that gap.

Also: crash sweeps for the ablation configs — every MGSP variant that
keeps shadow logging + the metadata log must stay single-write atomic.
"""

from __future__ import annotations

import random

import pytest

from repro.core import MgspConfig, MgspFilesystem, recover
from repro.errors import CrashRequested
from repro.nvm.crash import CrashPlan
from repro.nvm.device import NvmDevice


def run_two_page_commit(crash_after, use_txn: bool):
    """Write two dependent pages; crash somewhere; return (a, b) pages
    after recovery (None if never crashed)."""
    fs = MgspFilesystem(device_size=32 << 20, config=MgspConfig(degree=16))
    f = fs.create("db", capacity=1 << 20)
    f.write(0, b"A0" * 2048)  # page 0, version 0
    f.write(4096, b"B0" * 2048)  # page 1, version 0
    fs.device.drain()
    fs.device.crash_plan = CrashPlan(crash_after)
    try:
        if use_txn:
            with fs.begin_transaction(f) as txn:
                txn.write(0, b"A1" * 2048)
                txn.write(4096, b"B1" * 2048)
        else:
            f.write(0, b"A1" * 2048)
            f.write(4096, b"B1" * 2048)
    except CrashRequested:
        pass
    else:
        return None
    image = fs.device.crash_image(rng=random.Random(crash_after), persist_probability=0.5)
    fs2, _ = recover(NvmDevice.from_image(bytes(image)), config=MgspConfig(degree=16))
    f2 = fs2.open("db")
    return f2.read(0, 2), f2.read(4096, 2)


def test_plain_writes_are_individually_but_not_jointly_atomic():
    """Without the txn extension, the A1/B0 intermediate state is
    reachable — each page is old or new, but the pair can split."""
    outcomes = set()
    for crash_after in range(1, 80, 3):
        result = run_two_page_commit(crash_after, use_txn=False)
        if result is None:
            break
        a, b = result
        assert a in (b"A0", b"A1")  # page-level atomicity always holds
        assert b in (b"B0", b"B1")
        outcomes.add((a, b))
    # The torn pair state occurs at some crash point (the paper's caveat).
    assert (b"A1", b"B0") in outcomes or (b"A0", b"B1") in outcomes
    assert (b"A0", b"B0") in outcomes  # early crashes keep the old pair


def test_txn_extension_closes_the_gap():
    for crash_after in range(1, 80, 3):
        result = run_two_page_commit(crash_after, use_txn=True)
        if result is None:
            break
        a, b = result
        assert (a, b) in ((b"A0", b"B0"), (b"A1", b"B1")), (crash_after, a, b)


ABLATION_CONFIGS = {
    "no-multigran": dict(multi_granularity=False),
    "no-finegrain": dict(fine_grained_logging=False),
    "no-finelock": dict(fine_grained_locking=False),
    "no-opts": dict(min_search_tree=False, lazy_intention_locks=False, greedy_locking=False),
    "shadow-off": dict(shadow_logging=False),
}


@pytest.mark.parametrize("name,cfg", ABLATION_CONFIGS.items())
def test_ablations_keep_single_write_atomicity(name, cfg):
    """Every ablation retains the metadata-log commit protocol, so
    single-write atomicity + durability must survive crash sweeps."""
    config = MgspConfig(degree=16, **cfg)
    for crash_after in range(3, 420, 83):
        fs = MgspFilesystem(device_size=32 << 20, config=config)
        f = fs.create("a", capacity=256 * 1024)
        fs.device.drain()
        rng = random.Random(7)
        ref = bytearray(256 * 1024)
        pending = None
        fs.device.crash_plan = CrashPlan(crash_after)
        try:
            for _ in range(10_000):
                off = rng.randrange(0, 250_000)
                payload = bytes([rng.randrange(1, 255)]) * 3000
                pending = (off, payload)
                f.write(off, payload)
                ref[off : off + 3000] = payload
                pending = None
        except CrashRequested:
            pass
        else:
            break
        image = fs.device.crash_image(rng=random.Random(crash_after), persist_probability=0.5)
        fs2, _ = recover(NvmDevice.from_image(bytes(image)), config=config)
        got = fs2.open("a").read(0, 256 * 1024).ljust(256 * 1024, b"\0")
        old = bytes(ref)
        if pending is None:
            assert got == old, (name, crash_after)
        else:
            off, payload = pending
            new = bytearray(ref)
            new[off : off + 3000] = payload
            assert got in (old, bytes(new)), (name, crash_after)
