"""SplitFS-specific behaviour (strict mode, relink, staging)."""

from __future__ import annotations

import random

import pytest

from repro.errors import FsError
from repro.fs import Splitfs

CAP = 512 * 1024


@pytest.fixture
def split():
    fs = Splitfs(device_size=64 << 20)
    return fs, fs.create("s", CAP)


class TestStaging:
    def test_writes_stage_until_relink(self, split):
        fs, f = split
        fs.device.drain()
        f.write(0, b"staged")
        # Target file untouched before fsync.
        assert fs.device.buffer.working[f.inode.base : f.inode.base + 6] == bytearray(6)
        assert f.read(0, 6) == b"staged"  # reads merge staging
        f.fsync()
        assert bytes(fs.device.buffer.working[f.inode.base : f.inode.base + 6]) == b"staged"

    def test_relink_moves_no_data_through_the_api(self, split):
        """Relink is metadata-only: device stored_bytes barely grow."""
        fs, f = split
        f.write(0, b"x" * 64 * 1024)  # aligned: no CoW
        base = fs.device.stats.snapshot()
        f.fsync()
        delta = fs.device.stats.delta(base).stored_bytes
        assert delta < 2048  # just journal entries, not 64K of data

    def test_strict_mode_cow_amplifies_small_writes(self, split):
        fs, f = split
        fs.device.buffer.store(f.inode.base, bytes(CAP))
        fs.device.buffer.drain()
        fs.volume.set_size(f.inode, CAP)
        base = fs.device.stats.snapshot()
        f.write(100, b"k" * 512)  # sub-block: strict CoW
        delta = fs.device.stats.delta(base).stored_bytes
        assert delta >= 4096  # whole block copied into staging

    def test_aligned_writes_do_not_cow(self, split):
        fs, f = split
        base = fs.device.stats.snapshot()
        f.write(0, b"k" * 4096)
        delta = fs.device.stats.delta(base).stored_bytes
        assert delta < 4096 + 256

    def test_staging_reused_within_epoch(self, split):
        fs, f = split
        f.write(0, b"a" * 4096)
        in_use_after_first = fs.staging.in_use
        f.write(0, b"b" * 4096)  # same block, same staging slot
        assert fs.staging.in_use == in_use_after_first
        assert f.read(0, 4) == b"bbbb"

    def test_staging_reclaimed_at_relink(self, split):
        fs, f = split
        for i in range(16):
            f.write(i * 4096, b"z" * 4096)
        assert fs.staging.in_use > 0
        f.fsync()
        assert fs.staging.in_use == 0

    def test_mmap_view_guarded_while_staged(self, split):
        fs, f = split
        f.write(0, b"dirty")
        with pytest.raises(FsError):
            f.mmap_view()
        f.fsync()
        device, base, cap = f.mmap_view()
        assert cap == CAP

    def test_fuzz_with_periodic_relink(self, split):
        fs, f = split
        rng = random.Random(9)
        ref = bytearray(CAP)
        size = 0
        for i in range(150):
            off = rng.randrange(0, CAP - 1)
            ln = min(rng.choice([1, 300, 4096, 20000]), CAP - off)
            payload = bytes([rng.randrange(1, 256)]) * ln
            f.write(off, payload)
            ref[off : off + ln] = payload
            size = max(size, off + ln)
            if i % 11 == 0:
                f.fsync()
            roff = rng.randrange(0, size)
            rlen = min(5000, size - roff)
            assert f.read(roff, rlen) == bytes(ref[roff : roff + rlen]), i

    def test_relink_cost_scales_with_staged_blocks(self, split):
        """The paper's critique: frequent sync + many staged blocks =
        expensive relinks (metadata churn + TLB shootdowns)."""
        fs, f = split
        fs.take_traces()
        f.write(0, b"1" * 4096)
        f.fsync()
        one = sum(t.duration_ns(32) for t in fs.take_traces())
        for i in range(16):
            f.write(i * 4096, b"2" * 4096)
        f.fsync()
        many = sum(t.duration_ns(32) for t in fs.take_traces())
        assert many > 2 * one
