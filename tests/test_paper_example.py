"""Replay the paper's worked example (Figures 4 and 5) literally.

The paper illustrates MSL with a degree-2 radix tree over a 32 KB file
(4 KB leaves, so levels 4K/8K/16K/32K) and three writes:

  ① write 32 KB at offset 0 (the whole file)
  ② write 2 KB at offset 16 KB (fine-grained, half a leaf)
  ③ write 14 KB at offset 18 KB (coarse-grained combination:
     per Fig 4 it lands in one 4 KB log, one 8 KB log, and reuses the
     4 KB leaf of write ②... in terms of node ranges: [18K,20K) fills
     the tail of write ②'s leaf, [20K,24K) one leaf, [24K,32K) one 8K node)

Fig 5's bitmap walk-through: after ① the root holds everything; ② sets
existing bits down the right subtree and half the leaf's valid bits;
③ adds a leaf commit and an 8K-node commit.

We configure MgspConfig(degree=2, leaf_valid_bits=2) — exactly the
figure's shape (two valid bits per leaf = 2 KB minimum granularity) —
and assert both the data and the bitmap states the figure shows.
"""

from __future__ import annotations

from repro.core import MgspConfig, MgspFilesystem
from repro.core import bitmap
from repro.core.verify import verify_file

K = 1024


def make():
    config = MgspConfig(degree=2, leaf_valid_bits=2)
    fs = MgspFilesystem(device_size=16 << 20, config=config)
    handle = fs.create("fig4.dat", capacity=32 * K)
    return fs, handle


def eff_leaf(handle, index):
    node = handle.tree.peek(0, index)
    if node is None:
        return None
    # Resolve against the full ancestor path like a reader would.
    path_gen = 0
    level = handle.tree.height
    idx = 0
    while level > 0:
        ancestor = handle.tree.peek(level, idx)
        if ancestor is not None:
            path_gen = max(path_gen, bitmap.effective_nonleaf(ancestor.word, path_gen).sub_gen)
        level -= 1
        idx = index >> level  # ancestor of the leaf at this level
    return bitmap.effective_leaf(node.word, path_gen)


def test_fig4_write_sequence():
    fs, f = make()

    # -- write ① : 32 KB to the empty file ---------------------------------
    f.write(0, b"\x01" * 32 * K)
    # "The top rectangle represents the shadow log of the root node,
    # which is the mmap of the file itself. Any write to the root node
    # is directly written to the file."
    assert f.tree.height == 3  # 4K * 2^3 = 32K, as the paper computes
    raw = fs.device.buffer.load(f.inode.base, 32 * K)
    assert raw == b"\x01" * 32 * K  # data went straight to the file
    assert f.read(0, 32 * K) == b"\x01" * 32 * K

    # -- write ② : 2 KB at offset 16 KB (fine-grained) -----------------------
    f.write(16 * K, b"\x02" * 2 * K)
    # "MSL only updates the first 2KB of the 4KB log with fine-grained
    # logging": leaf #4 covers [16K, 20K); its first valid bit is set.
    leaf4 = eff_leaf(f, 4)
    assert leaf4 is not None and leaf4.mask == 0b01
    leaf4_node = f.tree.peek(0, 4)
    assert leaf4_node.log_off != 0  # a 4K leaf log was created
    # Only 2 KB of payload was written for the 2 KB update (zero-copy).
    assert f.read(16 * K, 2 * K) == b"\x02" * 2 * K
    assert f.read(18 * K, 2 * K) == b"\x01" * 2 * K  # rest of the leaf

    # Fig 5: existing bits are set on the path to the updated leaf — the
    # root and the right 16K node report fresh descendants.
    root_bits = bitmap.effective_nonleaf(f.tree.root.word, 0)
    assert root_bits.existing
    right16 = f.tree.peek(2, 1)  # [16K, 32K)
    assert right16 is not None
    assert bitmap.effective_nonleaf(right16.word, root_bits.sub_gen).existing

    # -- write ③ : 14 KB at offset 18 KB (coarse-grained combination) --------
    f.write(18 * K, b"\x03" * 14 * K)
    # "The 4KB log in the second fine-grained write can be reused, so
    # there is no space wasted": leaf #4's log now holds both halves.
    leaf4 = eff_leaf(f, 4)
    assert leaf4.mask == 0b11
    assert f.tree.peek(0, 4).log_off == leaf4_node.log_off  # reused
    # [24K, 32K) was written as ONE 8 KB coarse log (level-1 node #3).
    node8k = f.tree.peek(1, 3)
    assert node8k is not None
    bits8k = bitmap.unpack_nonleaf(node8k.word)
    assert bits8k.valid
    assert node8k.log_off != 0 and node8k.size == 8 * K
    # [20K, 24K): one 4 KB leaf (leaf #5).
    leaf5 = eff_leaf(f, 5)
    assert leaf5.mask == 0b11

    # Content checks across all three writes.
    assert f.read(0, 16 * K) == b"\x01" * 16 * K
    assert f.read(16 * K, 2 * K) == b"\x02" * 2 * K
    assert f.read(18 * K, 14 * K) == b"\x03" * 14 * K

    # "The additional space required for each granularity of logs does
    # not exceed the file size."
    assert fs.logs.in_use <= 32 * K * f.tree.height

    report = verify_file(f)
    assert report.ok, report.errors


def test_fig5_update_rules():
    """The three read rules of §III-B2, on the figure's tree."""
    fs, f = make()
    f.write(0, b"\x01" * 32 * K)
    f.write(16 * K, b"\x02" * 2 * K)

    # Rule "valid 0 / existing 1": the root must be searched deeper.
    root_bits = bitmap.effective_nonleaf(f.tree.root.word, 0)
    assert root_bits.existing
    # Left 16K subtree has no fresh data: reads resolve to the file.
    assert f.read(0, 4 * K) == b"\x01" * 4 * K
    # Right subtree: part from the leaf log, part from the file.
    assert f.read(16 * K, 4 * K) == b"\x02" * 2 * K + b"\x01" * 2 * K

    # After the leaf becomes fully valid, reads of it come from the log.
    f.write(18 * K, b"\x04" * 2 * K)
    leaf4 = f.tree.peek(0, 4)
    assert bitmap.unpack_leaf(leaf4.word).mask in (0b11, 0b10, 0b01)
    assert f.read(16 * K, 4 * K) == b"\x02" * 2 * K + b"\x04" * 2 * K


def test_space_reclaimed_on_close():
    """Paper: 'this space can be reclaimed when the file is closed.'"""
    fs, f = make()
    f.write(0, b"\x01" * 32 * K)
    f.write(16 * K, b"\x02" * 2 * K)
    f.write(18 * K, b"\x03" * 14 * K)
    assert fs.logs.in_use > 0
    f.close()
    assert fs.logs.in_use == 0
    f2 = fs.open("fig4.dat")
    assert f2.read(16 * K, 2 * K) == b"\x02" * 2 * K
