"""Volume: namespace persistence, extents, size updates, remount."""

from __future__ import annotations

import pytest

from repro.errors import AllocationError, FileExists, FileNotFound
from repro.fsapi.layout import VolumeLayout
from repro.fsapi.volume import Volume
from repro.nvm.device import NvmDevice


@pytest.fixture
def volume(device):
    return Volume(device)


class TestNamespace:
    def test_create_lookup(self, volume):
        inode = volume.create("a", 8192)
        assert volume.exists("a")
        assert volume.lookup("a") is inode
        assert inode.capacity == 8192
        assert inode.size == 0

    def test_capacity_rounded_to_page(self, volume):
        inode = volume.create("a", 5000)
        assert inode.capacity == 8192

    def test_duplicate_create_rejected(self, volume):
        volume.create("a", 4096)
        with pytest.raises(FileExists):
            volume.create("a", 4096)

    def test_lookup_missing(self, volume):
        with pytest.raises(FileNotFound):
            volume.lookup("nope")

    def test_unlink(self, volume):
        volume.create("a", 4096)
        volume.unlink("a")
        assert not volume.exists("a")

    def test_slot_reused_after_unlink(self, volume):
        a = volume.create("a", 4096)
        slot = a.slot_offset
        volume.unlink("a")
        b = volume.create("b", 4096)
        assert b.slot_offset == slot

    def test_extents_disjoint(self, volume):
        a = volume.create("a", 1 << 20)
        b = volume.create("b", 1 << 20)
        assert a.base + a.capacity <= b.base or b.base + b.capacity <= a.base

    def test_by_id(self, volume):
        a = volume.create("a", 4096)
        assert volume.by_id(a.id) is a
        with pytest.raises(FileNotFound):
            volume.by_id(9999)

    def test_extentless_inode(self, volume):
        inode = volume.create("log", 1 << 20, reserve_extent=False)
        assert inode.base == 0
        assert inode.capacity == 1 << 20

    def test_data_area_exhaustion(self, device):
        volume = Volume(device)
        data = volume.layout.data_area.size
        volume.create("big", data - 8192)
        with pytest.raises(AllocationError):
            volume.create("more", 1 << 20)


class TestSize:
    def test_set_size_persists(self, volume, device):
        inode = volume.create("a", 8192)
        volume.set_size(inode, 5000)
        assert inode.size == 5000
        remounted = Volume.mount(NvmDevice.from_image(bytes(device.crash_image(persist_words=[]))))
        assert remounted.lookup("a").size == 5000

    def test_set_size_beyond_capacity_rejected(self, volume):
        inode = volume.create("a", 8192)
        with pytest.raises(AllocationError):
            volume.set_size(inode, 8193)

    def test_volatile_size_not_durable(self, volume, device):
        inode = volume.create("a", 8192)
        volume.set_size_volatile(inode, 5000)
        assert inode.size == 5000
        remounted = Volume.mount(NvmDevice.from_image(bytes(device.crash_image(persist_words=[]))))
        assert remounted.lookup("a").size == 0

    def test_persist_size_makes_volatile_durable(self, volume, device):
        inode = volume.create("a", 8192)
        volume.set_size_volatile(inode, 5000)
        volume.persist_size(inode)
        remounted = Volume.mount(NvmDevice.from_image(bytes(device.crash_image(persist_words=[]))))
        assert remounted.lookup("a").size == 5000


class TestMount:
    def test_mount_restores_everything(self, device):
        volume = Volume(device)
        a = volume.create("alpha", 1 << 20, node_table_len=4096)
        b = volume.create("beta", 2 << 20)
        volume.set_size(a, 1234)
        device.drain()
        remounted = Volume.mount(NvmDevice.from_image(bytes(device.buffer.snapshot_durable())))
        ra = remounted.lookup("alpha")
        rb = remounted.lookup("beta")
        assert (ra.id, ra.base, ra.capacity, ra.size) == (a.id, a.base, a.capacity, 1234)
        assert ra.node_table_off == a.node_table_off
        assert rb.base == b.base

    def test_mount_continues_allocation_after_existing(self, device):
        volume = Volume(device)
        volume.create("a", 1 << 20)
        device.drain()
        remounted = Volume.mount(NvmDevice.from_image(bytes(device.buffer.snapshot_durable())))
        c = remounted.create("c", 4096)
        a = remounted.lookup("a")
        assert c.base >= a.base + a.capacity
        assert c.id > a.id

    def test_mount_empty(self, device):
        remounted = Volume.mount(device)
        assert remounted.files() == []


class TestLayout:
    def test_regions_are_disjoint_and_ordered(self, device):
        layout = VolumeLayout.for_device(device.size)
        regions = [
            layout.superblock,
            layout.metalog,
            layout.node_tables,
            layout.journal,
            layout.log_area,
            layout.data_area,
        ]
        for first, second in zip(regions, regions[1:]):
            assert first.end <= second.start
        assert regions[-1].end == device.size

    def test_region_contains(self, device):
        layout = VolumeLayout.for_device(device.size)
        r = layout.log_area
        assert r.contains(r.start)
        assert r.contains(r.end - 1)
        assert not r.contains(r.end)

    def test_tiny_device_rejected(self):
        with pytest.raises(ValueError):
            VolumeLayout.for_device(1 << 20)

    def test_fraction_overflow_rejected(self):
        with pytest.raises(ValueError):
            VolumeLayout.for_device(8 << 20, log_fraction=0.95, node_table_fraction=0.05)
