"""Replay engine: virtual locks, channels, contention, deadlock."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.nvm.timing import TimingModel
from repro.sim.engine import ReplayEngine
from repro.sim.locks import COMPATIBLE, LockMode, LockTable, VirtualLock, compatible
from repro.sim.trace import OpTrace


def timing(channels=4, lock_ns=0.0):
    return TimingModel(channels=channels, lock_ns=lock_ns)


def trace(*segments):
    return OpTrace(name="t", segments=list(segments))


class TestLockCompatibility:
    def test_table_i_of_the_paper(self):
        # Rows: requested; columns: held.
        expect = {
            ("IR", "IR"): True, ("IR", "IW"): True, ("IR", "R"): True, ("IR", "W"): False,
            ("IW", "IR"): True, ("IW", "IW"): True, ("IW", "R"): False, ("IW", "W"): False,
            ("R", "IR"): True, ("R", "IW"): False, ("R", "R"): True, ("R", "W"): False,
            ("W", "IR"): False, ("W", "IW"): False, ("W", "R"): False, ("W", "W"): False,
        }
        for (req, held), ok in expect.items():
            assert compatible(req, held) is ok, (req, held)

    def test_symmetry_where_expected(self):
        # The MGL table is symmetric.
        for a in LockMode.ALL:
            for b in LockMode.ALL:
                assert compatible(a, b) == compatible(b, a)

    def test_self_reentrancy(self):
        lock = VirtualLock("k")
        lock.grant(1, LockMode.W)
        assert lock.can_grant(1, LockMode.W)  # same thread
        assert not lock.can_grant(2, LockMode.W)

    def test_release_most_recent_grant(self):
        lock = VirtualLock("k")
        lock.grant(1, LockMode.IW)
        lock.grant(1, LockMode.W)
        lock.release(1)
        assert lock.holders == [(1, LockMode.IW)]

    def test_release_unheld_raises(self):
        lock = VirtualLock("k")
        with pytest.raises(KeyError):
            lock.release(1)

    def test_fifo_waiters(self):
        lock = VirtualLock("k")
        lock.grant(0, LockMode.W)
        lock.waiters.append((1, LockMode.R))
        lock.waiters.append((2, LockMode.R))
        lock.release(0)
        granted = lock.grantable_waiters()
        assert [tid for tid, _ in granted] == [1, 2]

    def test_waiter_prefix_stops_at_conflict(self):
        lock = VirtualLock("k")
        lock.waiters.append((1, LockMode.R))
        lock.waiters.append((2, LockMode.W))
        lock.waiters.append((3, LockMode.R))
        granted = lock.grantable_waiters()
        assert [tid for tid, _ in granted] == [1]  # W blocks; 3 must wait

    def test_lock_table_creates_on_demand(self):
        table = LockTable()
        a = table.get("x")
        assert table.get("x") is a
        assert len(table) == 1


class TestReplayBasics:
    def test_single_thread_sums_segments(self):
        engine = ReplayEngine(timing())
        result = engine.run([[trace(("compute", 100.0), ("io", 50.0))]])
        assert result.makespan_ns == 150.0

    def test_independent_threads_run_in_parallel(self):
        engine = ReplayEngine(timing())
        traces = [[trace(("compute", 1000.0))] for _ in range(4)]
        result = engine.run(traces)
        assert result.makespan_ns == 1000.0

    def test_exclusive_lock_serializes(self):
        engine = ReplayEngine(timing())
        per_thread = [
            [trace(("lock", "k", "W"), ("compute", 1000.0), ("unlock", "k"))]
            for _ in range(3)
        ]
        result = engine.run(per_thread)
        assert result.makespan_ns >= 3000.0

    def test_read_locks_do_not_serialize(self):
        engine = ReplayEngine(timing())
        per_thread = [
            [trace(("lock", "k", "R"), ("compute", 1000.0), ("unlock", "k"))]
            for _ in range(3)
        ]
        result = engine.run(per_thread)
        assert result.makespan_ns < 1500.0

    def test_intention_locks_compatible(self):
        engine = ReplayEngine(timing())
        per_thread = [
            [trace(("lock", "k", "IW"), ("compute", 1000.0), ("unlock", "k"))]
            for _ in range(4)
        ]
        result = engine.run(per_thread)
        assert result.makespan_ns < 1500.0

    def test_w_blocks_behind_iw(self):
        engine = ReplayEngine(timing())
        holder = [trace(("lock", "k", "IW"), ("compute", 500.0), ("unlock", "k"))]
        writer = [trace(("lock", "k", "W"), ("compute", 100.0), ("unlock", "k"))]
        result = engine.run([holder, writer])
        assert result.makespan_ns >= 600.0
        assert result.threads[1].blocked_acquires == 1

    def test_channels_limit_io_parallelism(self):
        engine = ReplayEngine(timing(channels=1))
        per_thread = [[trace(("io", 1000.0))] for _ in range(4)]
        result = engine.run(per_thread)
        assert result.makespan_ns == 4000.0

    def test_many_channels_allow_io_parallelism(self):
        engine = ReplayEngine(timing(channels=8))
        per_thread = [[trace(("io", 1000.0))] for _ in range(4)]
        result = engine.run(per_thread)
        assert result.makespan_ns == 1000.0

    def test_channel_occupancy_exceeds_visible_latency(self):
        # With occupancy 4x visible, one channel saturates at 1/occupancy.
        engine = ReplayEngine(timing(channels=1))
        per_thread = [[trace(("io", 100.0, 400.0)) for _ in range(4)]]
        result = engine.run(per_thread)
        # Thread sees 100ns per io, but the channel frees every 400ns.
        assert result.makespan_ns >= 3 * 400.0 + 100.0

    def test_deadlock_detected(self):
        engine = ReplayEngine(timing())
        # Thread 0 takes A then B; thread 1 takes B then A; no unlocks in
        # between -> classic deadlock.
        t0 = [trace(("lock", "A", "W"), ("compute", 10.0), ("lock", "B", "W"))]
        t1 = [trace(("lock", "B", "W"), ("compute", 10.0), ("lock", "A", "W"))]
        with pytest.raises(SimulationError):
            engine.run([t0, t1])

    def test_lock_wait_accounted(self):
        engine = ReplayEngine(timing())
        t0 = [trace(("lock", "k", "W"), ("compute", 1000.0), ("unlock", "k"))]
        t1 = [trace(("lock", "k", "W"), ("compute", 10.0), ("unlock", "k"))]
        result = engine.run([t0, t1])
        assert result.total_lock_wait_ns >= 900.0

    def test_throughput_helper(self):
        engine = ReplayEngine(timing())
        result = engine.run([[trace(("compute", 1e9))]])  # one second
        assert result.throughput_bytes_per_sec(1 << 20) == pytest.approx(1 << 20)

    def test_empty_run(self):
        engine = ReplayEngine(timing())
        assert engine.run([]).makespan_ns == 0.0
        assert engine.run([[], []]).makespan_ns == 0.0


class TestBatchedReplayDifferential:
    """batch_ops=True must be invisible: identical ReplayResult to the
    segment-at-a-time loop on real recorded workloads."""

    def _compare(self, streams, background=0, lock_ns=0.0, channels=4):
        engine = ReplayEngine(timing(channels=channels, lock_ns=lock_ns))
        batched = engine.run(streams, background=background, batch_ops=True)
        reference = engine.run(streams, background=background, batch_ops=False)
        assert batched.makespan_ns == reference.makespan_ns
        assert batched.threads == reference.threads
        assert batched.total_lock_wait_ns == reference.total_lock_wait_ns

    def test_fio_multithread_traces(self, monkeypatch):
        from repro.bench.registry import make_fs
        from repro.sim import engine as engine_mod
        from repro.workloads.fio import FioJob, run_fio

        captured = []
        orig_run = engine_mod.ReplayEngine.run

        def capture(self, streams, record_timeline=False, background=0, batch_ops=True):
            captured.append((list(streams), background))
            return orig_run(self, streams, record_timeline, background, batch_ops)

        monkeypatch.setattr(engine_mod.ReplayEngine, "run", capture)
        run_fio(
            make_fs("MGSP", device_size=64 << 20),
            FioJob(op="randwrite", bs=4096, fsize=4 << 20, threads=4, nops=120),
        )
        monkeypatch.undo()  # _compare must hit the real run()
        assert captured, "multithread fio run never hit the replay engine"
        for streams, background in list(captured):
            self._compare(streams, background=background, lock_ns=80.0)

    def test_lock_heavy_synthetic_traces(self):
        # Interleaved compute runs around contended lock acquisitions.
        streams = []
        for t in range(3):
            segs = []
            for i in range(40):
                segs.append(("compute", 10.0 + t))
                segs.append(("compute", 0.5 * i))
                segs.append(("lock", "K", "W"))
                segs.append(("compute", 3.0))
                segs.append(("unlock", "K"))
                segs.append(("io", 100.0, 140.0))
            streams.append([OpTrace(name=f"t{t}", segments=segs)])
        self._compare(streams, lock_ns=50.0, channels=2)

    def test_batching_disabled_when_recording_timeline(self):
        segs = [("compute", 5.0), ("compute", 7.0), ("io", 10.0)]
        streams = [[OpTrace(name="t", segments=segs)]]
        engine = ReplayEngine(timing())
        result = engine.run(streams, record_timeline=True, batch_ops=True)
        # One timeline entry per original compute segment.
        computes = [ev for ev in result.timeline if ev[3] == "compute"]
        assert len(computes) == 2

    def test_compute_run_arithmetic_is_sequential(self):
        # Float additions must replay in original order: (t+a)+b, not
        # t+(a+b). Values chosen so the two groupings differ in ulps.
        vals = [0.1, 0.2, 0.3, 1e-9, 7.7]
        streams = [[OpTrace(name="t", segments=[("compute", v) for v in vals])]]
        engine = ReplayEngine(timing())
        batched = engine.run(streams, batch_ops=True)
        reference = engine.run(streams, batch_ops=False)
        assert batched.makespan_ns == reference.makespan_ns
        assert batched.threads[0].compute_ns == reference.threads[0].compute_ns
