"""YCSB extension workloads."""

from __future__ import annotations

import pytest

from repro.bench.registry import make_fs
from repro.workloads.ycsb import WORKLOADS, YcsbResult, ZipfGenerator, run_ycsb


class TestZipf:
    def test_range(self):
        z = ZipfGenerator(100, seed=1)
        draws = [z.next() for _ in range(500)]
        assert all(0 <= d < 100 for d in draws)

    def test_skew(self):
        z = ZipfGenerator(1000, seed=2)
        draws = [z.next() for _ in range(2000)]
        head = sum(1 for d in draws if d < 10)
        assert head > len(draws) * 0.25  # heavy head

    def test_deterministic(self):
        a = ZipfGenerator(50, seed=3)
        b = ZipfGenerator(50, seed=3)
        assert [a.next() for _ in range(20)] == [b.next() for _ in range(20)]

    def test_bad_n(self):
        with pytest.raises(ValueError):
            ZipfGenerator(0)


class TestRunYcsb:
    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_all_workloads_run(self, workload):
        fs = make_fs("MGSP", device_size=96 << 20)
        result = run_ycsb(fs, workload=workload, records=400, operations=80)
        assert isinstance(result, YcsbResult)
        assert result.ops_per_sec > 0
        assert sum(result.per_op.values()) == 80

    def test_unknown_workload(self):
        with pytest.raises(ValueError):
            run_ycsb(make_fs("MGSP", device_size=96 << 20), workload="Z")

    def test_mix_respected(self):
        fs = make_fs("Ext4-DAX", device_size=96 << 20)
        result = run_ycsb(fs, workload="B", records=400, operations=200)
        assert result.per_op.get("read", 0) > result.per_op.get("update", 0) * 5

    def test_mgsp_wins_update_heavy(self):
        """Workload A (update heavy, WAL commits per statement): the
        paper's write-path advantage shows up here too."""
        results = {}
        for name in ("Ext4-DAX", "MGSP"):
            fs = make_fs(name, device_size=96 << 20)
            results[name] = run_ycsb(fs, workload="A", records=400, operations=150).ops_per_sec
        assert results["MGSP"] > results["Ext4-DAX"]

    def test_read_only_roughly_equal(self):
        results = {}
        for name in ("Ext4-DAX", "MGSP"):
            fs = make_fs(name, device_size=96 << 20)
            results[name] = run_ycsb(fs, workload="C", records=400, operations=150).ops_per_sec
        # All reads hit the DB page cache: FS barely matters.
        assert 0.8 <= results["MGSP"] / results["Ext4-DAX"] <= 1.3
