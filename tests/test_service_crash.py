"""Exhaustive crash sweep of a multi-shard service workload (PR 8).

Two tenants on two shards, driven through the real service path
(admission → DRR drain → MGSP protocol). Shard 0's device is armed
with a :class:`CrashPlan` while shard 1 runs to completion; for every
crash point we enumerate persistence subsets of shard 0's unfenced
frontier and prove:

- **legal prefix** — shard 0 recovers to completed writes plus the
  in-flight one all-or-nothing (the MGSP contract);
- **per-shard independence** — shard 1's recovered content is the full
  workload regardless of where shard 0 crashed: shards are separate
  devices and namespaces never span them;
- **recovery idempotence** — recovering a recovered image is a fixed
  point, byte for byte.
"""

from __future__ import annotations

import itertools

from repro.core import recover
from repro.errors import CrashRequested
from repro.nvm.crash import CrashPlan
from repro.nvm.device import NvmDevice
from repro.service import MgspService, Request, ServiceConfig, ShardMap

BS = 1024
OPS = 12
CAPACITY = 16 << 10
MAX_ENUM_WORDS = 8


def _two_tenants():
    """First two names landing on different shards under ShardMap(2)."""
    m = ShardMap(2)
    by_shard = {}
    for i in range(64):
        name = f"t{i:04d}"
        by_shard.setdefault(m.shard_for(name), name)
        if len(by_shard) == 2:
            break
    return by_shard[0], by_shard[1]


def _requests():
    return [
        Request(kind="write", offset=i * BS, nbytes=BS, arrival_ns=i * 1000.0)
        for i in range(OPS)
    ]


def _payload(i: int) -> bytes:
    return bytes([i + 1]) * BS


def _build(crash_after):
    """Run the service workload with shard 0 armed to crash.

    Returns (service, tenants, refs, pending) where refs[shard] is the
    expected post-crash content and pending the in-flight write on
    shard 0 (None if the crash landed between ops or never fired).
    """
    config = ServiceConfig(shards=2, device_size=16 << 20, file_capacity=CAPACITY)
    service = MgspService(config)
    t0, t1 = _two_tenants()
    for name in (t0, t1):
        service.register(name)
        for req in _requests():
            assert service.submit(name, req)

    refs = {0: bytearray(CAPACITY), 1: bytearray(CAPACITY)}
    pending = None
    crashed = False

    # Shard 1 first: it must be fully durable before shard 0 crashes,
    # making any cross-shard disturbance observable.
    for shard, tenant in ((1, t1), (0, t0)):
        fs = service.shards[shard]
        if shard == 0:
            fs.device.crash_plan = CrashPlan(crash_after)
        try:
            for name, req in service.schedulers[shard].drain():
                assert name == tenant
                session = service.sessions[name]
                fs.current_thread = session.thread
                i = req.offset // BS
                pending = (shard, req.offset, _payload(i))
                session.handle.write(req.offset, _payload(i))
                session.handle.fsync()
                refs[shard][req.offset : req.offset + BS] = _payload(i)
                pending = None
        except CrashRequested:
            assert shard == 0
            crashed = True
    if not crashed:
        return None
    return service, (t0, t1), refs, pending


def _legal_states(ref, pending):
    states = {bytes(ref)}
    if pending is not None:
        _, off, payload = pending
        with_pending = bytearray(ref)
        with_pending[off : off + len(payload)] = payload
        states.add(bytes(with_pending))
    return states


def _recover_content(image: bytes, config, tenant: str):
    fs, _ = recover(NvmDevice.from_image(image), config=config)
    data = b""
    if fs.volume.exists(tenant):
        inode = fs.volume.lookup(tenant)
        if inode.size:
            data = fs.open(tenant).read(0, CAPACITY)
    return fs, data.ljust(CAPACITY, b"\0")


def test_service_crash_sweep_shard_independence_and_idempotence():
    checked = enumerated = 0
    shard1_contents = set()
    for crash_after in range(3, 900, 23):
        built = _build(crash_after)
        if built is None:
            break
        service, (t0, t1), refs, pending = built
        fs_config = service.config.make_fs_config()

        # Per-shard independence: shard 1 was never crashed; its image
        # (no extra persistence help at all) recovers to the full run.
        image1 = bytes(service.shards[1].device.crash_image(persist_words=()))
        _, got1 = _recover_content(image1, fs_config, t1)
        assert got1 == bytes(refs[1]).ljust(CAPACITY, b"\0")
        shard1_contents.add(got1)

        words = service.shards[0].device.unfenced_words()
        if len(words) > MAX_ENUM_WORDS:
            continue
        checked += 1
        legal = _legal_states(refs[0], pending)
        if enumerated > 400:
            break
        for r in range(len(words) + 1):
            for subset in itertools.combinations(words, r):
                enumerated += 1
                image0 = bytes(
                    service.shards[0].device.crash_image(persist_words=subset)
                )
                fs2, got0 = _recover_content(image0, fs_config, t0)
                assert got0 in legal, f"crash_after={crash_after} subset={subset}"
                # Idempotence: recovery output is a fixed point.
                stable = bytes(fs2.device.crash_image(persist_words=()))
                fs3, got_again = _recover_content(stable, fs_config, t0)
                assert got_again == got0
                assert bytes(fs3.device.crash_image(persist_words=())) == stable

    # Shard 1 recovered to the same bytes at every shard-0 crash point.
    assert len(shard1_contents) == 1
    assert checked >= 3, checked
    assert enumerated >= 40, enumerated
