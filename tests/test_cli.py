"""The two CLIs: python -m repro.workloads and python -m repro.bench."""

from __future__ import annotations

import pytest

from repro.bench.__main__ import main as bench_main
from repro.workloads.__main__ import main as fio_main


class TestFioCli:
    def test_basic_run(self, capsys):
        assert fio_main(["MGSP", "write", "8m", "4k", "1", "1", "0", "2"]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out and "MB/s" in out
        assert "write amp" in out

    def test_defaults(self, capsys):
        assert fio_main(["Ext4-DAX", "randread", "8m", "4k"]) == 0
        assert "IOPS" in capsys.readouterr().out

    def test_multithread_reports_lock_wait(self, capsys):
        assert fio_main(["Ext4-DAX", "write", "8m", "4k", "1", "4", "0", "2"]) == 0
        assert "lock wait" in capsys.readouterr().out

    def test_mixed_ratio(self, capsys):
        assert fio_main(["NOVA", "randrw", "8m", "4k", "1", "1", "30", "2"]) == 0
        assert "randrw" in capsys.readouterr().out

    def test_unknown_fs_raises(self):
        with pytest.raises(ValueError):
            fio_main(["BTRFS", "write", "8m", "4k"])


class TestBenchCli:
    def test_list(self, capsys):
        assert bench_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig08-write" in out and "tab02" in out

    def test_single_experiment(self, capsys):
        assert bench_main(["tab02"]) == 0
        assert "amplification" in capsys.readouterr().out

    def test_report_file(self, tmp_path, capsys):
        target = tmp_path / "report.txt"
        assert bench_main(["tab02", "-o", str(target)]) == 0
        assert "amplification" in target.read_text()

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            bench_main(["fig99"])
