"""FIO runner details: latency stats, determinism, prefill, mst stats."""

from __future__ import annotations

import pytest

from repro.bench.registry import make_fs
from repro.workloads.fio import FioJob, FioResult, run_fio


def run(fs_name="MGSP", **job_kw):
    defaults = dict(op="write", bs=4096, fsize=4 << 20, fsync=1, nops=60)
    defaults.update(job_kw)
    return run_fio(make_fs(fs_name, device_size=64 << 20), FioJob(**defaults))


class TestLatency:
    def test_percentiles_ordered(self):
        result = run(op="randwrite", nops=100)
        p50 = result.latency_percentile(50)
        p95 = result.latency_percentile(95)
        p99 = result.latency_percentile(99)
        assert 0 < p50 <= p95 <= p99
        assert result.mean_latency_ns > 0

    def test_latency_count_matches_ops(self):
        result = run(nops=40)
        assert len(result.latencies_ns) == result.ops

    def test_empty_percentile(self):
        empty = FioResult(
            job=FioJob(), fs_name="x", elapsed_ns=0, total_bytes=0, ops=0,
            write_amplification=0,
        )
        assert empty.latency_percentile(99) == 0.0
        assert empty.mean_latency_ns == 0.0

    def test_write_latency_includes_fsync(self):
        synced = run(fsync=1, nops=50)
        unsynced = run(fsync=0, nops=50)
        assert synced.latency_percentile(50) > unsynced.latency_percentile(50)

    def test_mixed_workload_is_bimodal(self):
        """Reads cost less than synchronized writes, so a mixed job's
        tail (writes) sits clearly above its median region."""
        result = run(op="randrw", write_ratio=0.3, nops=150)
        assert result.latency_percentile(95) > 1.5 * result.latency_percentile(25)


class TestDeterminism:
    def test_same_job_same_numbers(self):
        a = run(op="randrw", write_ratio=0.5, nops=80)
        b = run(op="randrw", write_ratio=0.5, nops=80)
        assert a.elapsed_ns == b.elapsed_ns
        assert a.write_amplification == b.write_amplification
        assert a.latencies_ns == b.latencies_ns

    def test_seed_changes_offsets(self):
        a = run(op="randwrite", seed=1, nops=80)
        b = run(op="randwrite", seed=2, nops=80)
        # Same totals, different paths: latencies differ somewhere.
        assert a.total_bytes == b.total_bytes


class TestPrefill:
    @pytest.mark.parametrize("fs_name", ["Ext4-DAX", "NOVA", "Libnvmmio", "MGSP", "SplitFS"])
    def test_reads_return_prefilled_pattern(self, fs_name):
        fs = make_fs(fs_name, device_size=64 << 20)
        job = FioJob(op="read", bs=4096, fsize=2 << 20, nops=10)
        result = run_fio(fs, job)
        assert result.total_bytes == 10 * 4096
        inode = fs.volume.lookup("fio.dat")
        assert inode.size == job.fsize
        if inode.base:  # extent-backed: check the pattern on media
            assert fs.device.buffer.load(inode.base, 8) == bytes(range(8))

    def test_prefill_skippable(self):
        fs = make_fs("MGSP", device_size=64 << 20)
        job = FioJob(op="write", bs=4096, fsize=2 << 20, nops=10, prefill=False)
        result = run_fio(fs, job)
        assert result.ops == 10

    def test_prefill_costs_excluded(self):
        with_pf = run(prefill=True, nops=30)
        without = run(prefill=False, nops=30)
        # Prefill must not inflate the measured window.
        assert with_pf.elapsed_ns == pytest.approx(without.elapsed_ns, rel=0.25)


class TestMstReporting:
    def test_sequential_high_hit_rate(self):
        result = run(op="write", bs=1024, nops=100)
        assert result.mst_hit_rate > 0.8

    def test_random_lower_hit_rate(self):
        seq = run(op="write", bs=1024, nops=100)
        rnd = run(op="randwrite", bs=1024, nops=100)
        assert rnd.mst_hit_rate < seq.mst_hit_rate

    def test_non_mgsp_reports_zero(self):
        result = run(fs_name="Ext4-DAX")
        assert result.mst_hit_rate == 0.0
