"""The telemetry CLI and its exporter formats, plus the bench sidecar."""

from __future__ import annotations

import json

import pytest

from repro.obs.__main__ import main as obs_main


def test_report_format_and_conservation_exit(capsys):
    assert obs_main(["--workload", "fio", "--config", "mgsp-sync"]) == 0
    out = capsys.readouterr().out
    assert "per-layer virtual time" in out
    assert "per-layer device writes" in out
    assert "hottest spans" in out
    assert "(unattributed)" in out
    assert "write.data" in out


def test_async_config_conserves_too(capsys):
    assert obs_main(["--workload", "txn", "--config", "mgsp-async"]) == 0
    out = capsys.readouterr().out
    assert "checkpoint" in out  # async write-back shows the flusher layer


def test_json_export_is_identical_across_runs(tmp_path):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    assert obs_main(["--workload", "fio", "--config", "mgsp-sync",
                     "--format", "json", "--out", str(a)]) == 0
    assert obs_main(["--workload", "fio", "--config", "mgsp-sync",
                     "--format", "json", "--out", str(b)]) == 0
    assert a.read_text() == b.read_text()

    snap = json.loads(a.read_text())
    totals = snap["totals"]
    assert sum(snap["time_breakdown_ns"].values()) == pytest.approx(
        totals["elapsed_ns"], rel=1e-9
    )
    assert sum(snap["write_breakdown_bytes"].values()) == totals["stored_bytes"]
    assert snap["spans"]["write.data"]["count"] > 0
    assert "counters" in snap["metrics"]


def test_prometheus_export_shape(capsys):
    assert obs_main(["--workload", "fio", "--config", "mgsp-sync",
                     "--format", "prometheus"]) == 0
    out = capsys.readouterr().out
    lines = out.splitlines()
    assert any(l.startswith("# TYPE span_calls_total counter") for l in lines)
    assert any(l.startswith("# TYPE span_ns histogram") for l in lines)
    # One TYPE header per family, not per sample.
    type_lines = [l for l in lines if l.startswith("# TYPE ")]
    assert len(type_lines) == len(set(type_lines))
    # Every sample line ends in a parseable number.
    for line in lines:
        if line.startswith("#") or not line:
            continue
        float(line.rpartition(" ")[2])
    # Histogram series carry the canonical +Inf bound and sidecars.
    assert any('le="+Inf"' in l for l in lines)
    assert any(l.startswith("span_ns_sum") for l in lines)
    assert any(l.startswith("span_ns_count") for l in lines)


def test_conservation_checker_catches_bad_books():
    from repro.obs.__main__ import _conservation_ok
    from repro.obs.harness import run_workload

    run = run_workload("fio", "mgsp-sync")
    tel = run.telemetry
    assert _conservation_ok(tel)
    # Cook the books: shift a span's self bytes without touching the
    # totals — the exact byte check must notice.
    tel.spans["write.data"].self_bytes += 1
    assert not _conservation_ok(tel)


def test_bench_breakdown_sidecar():
    from repro.bench.harness import collect_breakdowns, run_one
    from repro.workloads.fio import FioJob

    records = []
    collect_breakdowns(records)
    try:
        job = FioJob(op="write", fsize=1 << 20, bs=4096, fsync=1, nops=40)
        run_one("MGSP", job)
    finally:
        collect_breakdowns(None)
    assert len(records) == 1
    rec = records[0]
    assert rec["fs"] == "MGSP"
    assert rec["job"]["bs"] == 4096
    breakdown = rec["breakdown"]
    assert sum(breakdown["write_breakdown_bytes"].values()) == (
        breakdown["totals"]["stored_bytes"]
    )
    json.dumps(rec)  # sidecar records are JSON-serializable


def test_workloads_cli_histogram_line(capsys):
    from repro.workloads.__main__ import main as wl_main

    assert wl_main(["MGSP", "write", "1m", "4k", "1", "1", "0", "1"]) == 0
    out = capsys.readouterr().out
    assert "histogram" in out and "buckets" in out
