"""Replay timeline recording + ASCII rendering."""

from __future__ import annotations

from repro.inspect import render_timeline
from repro.nvm.timing import TimingModel
from repro.sim.engine import ReplayEngine
from repro.sim.trace import OpTrace


def trace(*segments):
    return OpTrace(segments=list(segments))


def engine(channels=2):
    return ReplayEngine(TimingModel(channels=channels, lock_ns=0.0))


class TestTimelineRecording:
    def test_off_by_default(self):
        result = engine().run([[trace(("compute", 10.0))]])
        assert result.timeline == []

    def test_compute_and_io_events(self):
        result = engine().run(
            [[trace(("compute", 100.0), ("io", 50.0))]], record_timeline=True
        )
        kinds = [e[3] for e in result.timeline]
        assert kinds == ["compute", "io"]
        (c, i) = result.timeline
        assert c[1:3] == (0.0, 100.0)
        assert i[1:3] == (100.0, 150.0)

    def test_lock_wait_recorded(self):
        holder = [trace(("lock", "k", "W"), ("compute", 500.0), ("unlock", "k"))]
        waiter = [trace(("compute", 10.0), ("lock", "k", "W"), ("unlock", "k"))]
        result = engine().run([holder, waiter], record_timeline=True)
        waits = [e for e in result.timeline if e[3] == "wait" and e[0] == 1]
        assert waits and waits[0][2] - waits[0][1] >= 400.0

    def test_channel_wait_recorded(self):
        result = engine(channels=1).run(
            [[trace(("io", 100.0))], [trace(("io", 100.0))]], record_timeline=True
        )
        waits = [e for e in result.timeline if e[3] == "wait"]
        assert waits

    def test_events_within_makespan(self):
        traces = [[trace(("compute", 30.0), ("io", 20.0))] for _ in range(3)]
        result = engine().run(traces, record_timeline=True)
        for _tid, start, end, _kind in result.timeline:
            assert 0 <= start <= end <= result.makespan_ns


class TestRendering:
    def test_render_basic(self):
        result = engine().run(
            [[trace(("compute", 100.0), ("io", 100.0))]], record_timeline=True
        )
        art = render_timeline(result, width=40)
        assert "t0" in art and "=" in art and "#" in art

    def test_render_without_timeline(self):
        result = engine().run([[trace(("compute", 10.0))]])
        assert "record_timeline" in render_timeline(result)

    def test_render_multi_thread_rows(self):
        traces = [[trace(("compute", 50.0))] for _ in range(4)]
        result = engine().run(traces, record_timeline=True)
        art = render_timeline(result, width=30)
        assert art.count("|") == 8  # 4 rows, two bars each

    def test_contention_shows_wait_glyphs(self):
        holder = [trace(("lock", "k", "W"), ("compute", 900.0), ("unlock", "k"))]
        waiter = [trace(("compute", 10.0), ("lock", "k", "W"), ("compute", 50.0), ("unlock", "k"))]
        result = engine().run([holder, waiter], record_timeline=True)
        assert "." in render_timeline(result, width=50)
