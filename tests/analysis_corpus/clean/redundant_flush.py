"""Conforming twin: every clwb covers a dirty line."""

EXPECT = []


def run(ctx):
    ctx.device.store(ctx.data_off, b"y" * 64)
    ctx.device.persist(ctx.data_off, 64)
    ctx.device.store(ctx.data_off, b"Y" * 64)  # re-dirty before re-flushing
    ctx.device.persist(ctx.data_off, 64)
