"""Conforming twin: the op persists its data before returning."""

EXPECT = []


def run(ctx):
    with ctx.op("write"):
        ctx.device.store(ctx.data_off, b"x" * 256)
        ctx.device.persist(ctx.data_off, 256)
