"""Conforming twin: every fence has something pending to order."""

EXPECT = []


def run(ctx):
    ctx.device.store(ctx.data_off, b"z" * 64)
    ctx.device.flush(ctx.data_off, 64)
    ctx.device.fence()
