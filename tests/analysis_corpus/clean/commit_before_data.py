"""Conforming twin: data fenced before the commit entry persists."""

EXPECT = []


def run(ctx):
    ctx.device.nt_store(ctx.data_off, b"payload " * 64)
    ctx.device.fence()  # step 4: data durable first
    ctx.device.nt_store(ctx.metalog_off, b"\x5a" * 64)
    ctx.device.fence()  # step 5: commit point
