"""Conforming twin: node-table words committed atomically, one by one."""

EXPECT = []


def run(ctx):
    ctx.device.atomic_store_u64(ctx.node_tables_off, 0x1111111111111111)
    ctx.device.flush(ctx.node_tables_off, 8)
    ctx.device.fence()
    ctx.device.atomic_store_u64(ctx.node_tables_off + 8, 0x2222222222222222)
    ctx.device.flush(ctx.node_tables_off + 8, 8)
    ctx.device.fence()
