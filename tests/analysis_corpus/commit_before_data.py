"""Violation: commit entry fenced while its guarded data is volatile.

The MGSP protocol requires the data fence (step 4) strictly before the
commit-point store (step 5); this program skips it, so at the commit
fence the data lines are still pending from an older store — a crash
could persist the checksummed entry via eviction and lose the data.
"""

EXPECT = ["commit-before-data"]


def run(ctx):
    ctx.device.nt_store(ctx.data_off, b"payload " * 64)  # 512B of data
    # MISSING: ctx.device.fence()  <- the dropped step-4 data fence
    ctx.device.nt_store(ctx.metalog_off, b"\x5a" * 64)  # 64B commit entry
    ctx.device.fence()  # commit fence sees the data still pending
