"""Perf violation: a fence with nothing pending (wasted sfence)."""

EXPECT = ["redundant-fence"]


def run(ctx):
    ctx.device.store(ctx.data_off, b"z" * 64)
    ctx.device.persist(ctx.data_off, 64)
    ctx.device.fence()  # nothing was flushed since the persist
