"""Violation: multi-word metadata via a plain (tearable) cached store.

Node-table slots are 16 bytes (word + log pointer); writing both with
one cached store lets either 8-byte half persist without the other.
"""

EXPECT = ["torn-multiword"]


def run(ctx):
    ctx.device.store(ctx.node_tables_off, b"\x11" * 16)
    ctx.device.persist(ctx.node_tables_off, 16)
