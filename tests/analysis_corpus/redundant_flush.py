"""Perf violation: clwb of an already-clean line (wasted media op)."""

EXPECT = ["redundant-flush"]


def run(ctx):
    ctx.device.store(ctx.data_off, b"y" * 64)
    ctx.device.persist(ctx.data_off, 64)  # line is now durable
    ctx.device.flush(ctx.data_off, 64)  # flushes nothing
