"""Violation: an op returns with dirty (unflushed) lines alive.

Outside the async write-back config, every synchronized operation must
leave its data at least flushed before returning; this op stores and
walks away.
"""

EXPECT = ["unfenced-at-boundary"]


def run(ctx):
    with ctx.op("write"):
        ctx.device.store(ctx.data_off, b"x" * 256)
        # MISSING: ctx.device.persist(ctx.data_off, 256)
