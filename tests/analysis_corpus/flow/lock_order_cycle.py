"""Two paths acquire the same two lock classes in opposite order:
append() holds ``inode`` while taking ``journal``; flush_all() holds
``journal`` while taking ``inode`` — a classic ABBA deadlock."""

EXPECT = ["lock-order-cycle"]


class Journal:
    def __init__(self, recorder):
        self.recorder = recorder

    def append(self, inode_id):
        recorder = self.recorder
        recorder.lock(("inode", inode_id), "W")
        recorder.lock(("journal",), "W")
        recorder.unlock(("journal",))
        recorder.unlock(("inode", inode_id))

    def flush_all(self, inode_id):
        recorder = self.recorder
        recorder.lock(("journal",), "W")
        recorder.lock(("inode", inode_id), "W")
        recorder.unlock(("inode", inode_id))
        recorder.unlock(("journal",))
