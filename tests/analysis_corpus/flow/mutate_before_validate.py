"""Merged validate/mutate loop in a bulk op: the second iteration's
validation failure raises with the first element already applied — a
half-applied batch (the PR 8 ``nt_store_words`` bug shape)."""

EXPECT = ["mutate-before-validate"]


class WordTable:
    def __init__(self, device):
        self.device = device
        self.slots = {}

    def store_words_v(self, words):
        for offset, value in words:
            if offset % 8 != 0:
                raise ValueError(f"unaligned word offset {offset}")
            self.slots[offset] = value
