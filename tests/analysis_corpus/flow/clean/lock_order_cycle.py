"""Conforming twin: both paths acquire ``inode`` before ``journal`` —
a consistent global order, no cycle."""

EXPECT = []


class Journal:
    def __init__(self, recorder):
        self.recorder = recorder

    def append(self, inode_id):
        recorder = self.recorder
        recorder.lock(("inode", inode_id), "W")
        recorder.lock(("journal",), "W")
        recorder.unlock(("journal",))
        recorder.unlock(("inode", inode_id))

    def flush_all(self, inode_id):
        recorder = self.recorder
        recorder.lock(("inode", inode_id), "W")
        recorder.lock(("journal",), "W")
        recorder.unlock(("journal",))
        recorder.unlock(("inode", inode_id))
