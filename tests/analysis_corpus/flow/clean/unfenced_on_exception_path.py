"""Conforming twin: the fence lives in a ``finally``, so even the
swallowed-exception path re-establishes durability before commit()
returns."""

EXPECT = []


class Region:
    def __init__(self, device):
        self.device = device

    def commit(self, off, data):
        try:
            self.device.nt_store(off, data)
        except OSError:
            pass
        finally:
            self.device.fence()
        return True
