"""Conforming twin: validate the whole batch first, then mutate — a
mid-batch validation failure leaves the table untouched."""

EXPECT = []


class WordTable:
    def __init__(self, device):
        self.device = device
        self.slots = {}

    def store_words_v(self, words):
        for offset, _value in words:
            if offset % 8 != 0:
                raise ValueError(f"unaligned word offset {offset}")
        for offset, value in words:
            self.slots[offset] = value
