"""Conforming twin: the bail-out handler rolls the segment back before
returning, so the op's effects are accounted for either way."""

EXPECT = []


class Segment:
    def __init__(self, device):
        self.device = device
        self.committed = 0

    def _write_one(self, off, data):
        self.device.nt_store(off, data)
        self.device.fence()

    def rollback(self):
        self.committed = 0

    def push(self, off, data):
        try:
            self._write_one(off, data)
        except OSError:
            self.rollback()
            return False
        self.committed += 1
        return True
