"""The try body issues protocol stores (through a helper that fences
them itself), but the handler bails out with ``return False`` without
rolling back or committing stats — callers can't tell how much of the
op landed."""

EXPECT = ["exception-path-no-rollback"]


class Segment:
    def __init__(self, device):
        self.device = device
        self.committed = 0

    def _write_one(self, off, data):
        self.device.nt_store(off, data)
        self.device.fence()

    def push(self, off, data):
        try:
            self._write_one(off, data)
        except OSError:
            return False  # stores above are unaccounted for
        self.committed += 1
        return True
