"""A swallowed exception lets commit() return with the nt_store
possibly never fenced: the failure may hit *between* the store and the
fence, the handler eats it, and the caller believes the op completed."""

EXPECT = ["unfenced-on-exception-path"]


class Region:
    def __init__(self, device):
        self.device = device

    def commit(self, off, data):
        try:
            self.device.nt_store(off, data)
            self.device.fence()
        except OSError:
            pass  # swallowed: the store above may still be unfenced
        return True
