"""Perfetto (Chrome trace-event) export: schema, tracks, determinism."""

from __future__ import annotations

import json

import pytest

from repro.obs import perfetto
from repro.obs.__main__ import main as obs_main
from repro.obs.harness import run_workload


@pytest.fixture(scope="module")
def fio_run():
    return run_workload("fio", "mgsp-sync", flight_capacity=0)


def _thread_names(doc):
    return {
        (e["pid"], e["tid"]): e["args"]["name"]
        for e in doc["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    }


def test_from_flight_schema_and_tracks(fio_run):
    doc = perfetto.from_flight(
        fio_run.flight, workload=fio_run.workload, config=fio_run.config_name
    )
    perfetto.validate(doc)
    names = set(_thread_names(doc).values())
    # per-layer tracks for a single-device run
    assert "ops" in names
    assert {"layer:data", "layer:metadata", "layer:lock"} <= names
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert xs
    assert all(e["dur"] >= 0 and e["ts"] >= 0 for e in xs)
    # every complete event lives on a named track
    tracks = set(_thread_names(doc))
    assert all((e["pid"], e["tid"]) in tracks for e in xs)


def test_from_flight_deterministic(fio_run):
    again = run_workload("fio", "mgsp-sync", flight_capacity=0)
    one = perfetto.render(perfetto.from_flight(fio_run.flight, workload="w"))
    two = perfetto.render(perfetto.from_flight(again.flight, workload="w"))
    assert one == two


def test_cli_perfetto_format(tmp_path, capsys):
    out = tmp_path / "trace.json"
    rc = obs_main(
        ["--workload", "toy-misordered", "--config", "sync",
         "--format", "perfetto", "--out", str(out)]
    )
    assert rc == 0
    doc = json.loads(out.read_text())
    perfetto.validate(doc)
    assert any(e["name"] == "fence" for e in doc["traceEvents"])


def test_service_tenant_lanes():
    from repro.service.service import ServiceConfig, run_service_workload

    config = ServiceConfig(shards=2, record_timeline=True)
    report, service = run_service_workload(
        config, tenants=8, ops_per_tenant=4, return_service=True
    )
    assert len(service.timelines) == 2
    doc = perfetto.from_timelines(service.timelines, lane_names=service.lane_names)
    perfetto.validate(doc)
    threads = _thread_names(doc)
    # one Perfetto process per shard, one lane per tenant
    assert {pid for pid, _ in threads} == {1, 2}
    tenant_lanes = [n for n in threads.values() if n.startswith("t0")]
    assert len(tenant_lanes) == 8
    kinds = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
    assert kinds <= {"compute", "io", "wait"}
    assert "io" in kinds


def test_record_timeline_does_not_change_report():
    """Per-tenant lanes are free: the timeline capture must not move
    any reported number (it only disables replay batching)."""
    from repro.service.service import ServiceConfig, run_service_workload

    plain = run_service_workload(ServiceConfig(shards=2), tenants=8)
    timed = run_service_workload(
        ServiceConfig(shards=2, record_timeline=True), tenants=8
    )
    assert plain == timed


def test_validate_rejects_malformed():
    with pytest.raises(ValueError):
        perfetto.validate({"traceEvents": [{"ph": "X", "name": "x"}]})
    with pytest.raises(ValueError):
        perfetto.validate({"traceEvents": "nope"})
    with pytest.raises(ValueError):
        perfetto.validate(
            {"traceEvents": [{"ph": "Z", "name": "x", "pid": 1, "tid": 1}]}
        )
    perfetto.validate({"traceEvents": []})  # empty is fine
