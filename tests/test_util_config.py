"""util helpers, MgspConfig validation, error hierarchy."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import errors
from repro.core.config import MgspConfig
from repro.util import (
    align_down,
    align_up,
    checksum,
    clamp_range,
    fmt_size,
    is_power_of_two,
    parse_size,
    ranges_overlap,
    split_by_alignment,
)


class TestSizes:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("4k", 4096),
            ("4K", 4096),
            ("128b", 128),
            ("1g", 1 << 30),
            ("2m", 2 << 20),
            ("16kb", 16384),
            ("512", 512),
            (" 8K ", 8192),
            ("1.5k", 1536),
        ],
    )
    def test_parse(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize(
        "n,expected",
        [(4096, "4K"), (2048, "2K"), (1 << 20, "1M"), (1 << 30, "1G"), (100, "100B"), (5000, "5000B")],
    )
    def test_fmt(self, n, expected):
        assert fmt_size(n) == expected

    @given(st.integers(1, 1 << 40))
    def test_parse_fmt_roundtrip(self, n):
        assert parse_size(fmt_size(n)) == n


class TestAlignment:
    def test_align(self):
        assert align_down(100, 64) == 64
        assert align_up(100, 64) == 128
        assert align_up(128, 64) == 128
        assert align_down(128, 64) == 128

    @given(st.integers(0, 10**9), st.sampled_from([8, 64, 4096]))
    def test_align_properties(self, value, unit):
        down, up = align_down(value, unit), align_up(value, unit)
        assert down <= value <= up
        assert down % unit == 0 and up % unit == 0
        assert up - down in (0, unit)

    def test_power_of_two(self):
        assert is_power_of_two(1) and is_power_of_two(4096)
        assert not is_power_of_two(0)
        assert not is_power_of_two(3)
        assert not is_power_of_two(-4)

    def test_ranges_overlap(self):
        assert ranges_overlap(0, 10, 5, 10)
        assert not ranges_overlap(0, 10, 10, 5)
        assert not ranges_overlap(0, 0, 0, 10)

    def test_clamp_range(self):
        assert clamp_range(5, 10, 0, 8) == (5, 3)
        assert clamp_range(5, 10, 20, 30) == (20, 0)

    def test_split_by_alignment(self):
        chunks = list(split_by_alignment(100, 300, 128))
        assert chunks == [(100, 28), (128, 128), (256, 128), (384, 16)]
        assert sum(c[1] for c in chunks) == 300

    @given(st.integers(0, 5000), st.integers(1, 2000), st.sampled_from([64, 128, 4096]))
    def test_split_covers_exactly(self, off, length, unit):
        chunks = list(split_by_alignment(off, length, unit))
        assert sum(c[1] for c in chunks) == length
        pos = off
        for coff, clen in chunks:
            assert coff == pos
            pos += clen
            assert clen <= unit

    def test_checksum_stability(self):
        assert checksum(b"abc") == checksum(b"abc")
        assert checksum(b"abc") != checksum(b"abd")


class TestMgspConfig:
    def test_defaults(self):
        config = MgspConfig()
        assert config.degree == 64
        assert config.sub_block == 128
        assert config.effective_leaf_bits == 32

    def test_fine_grained_off_sub_block(self):
        config = MgspConfig(fine_grained_logging=False)
        assert config.sub_block == config.leaf_size
        assert config.effective_leaf_bits == 1

    @pytest.mark.parametrize("bad", [0, 3, 12, -4])
    def test_bad_degree_rejected(self, bad):
        with pytest.raises(ValueError):
            MgspConfig(degree=bad)

    def test_bad_leaf_bits_rejected(self):
        with pytest.raises(ValueError):
            MgspConfig(leaf_valid_bits=64)
        with pytest.raises(ValueError):
            MgspConfig(leaf_valid_bits=3)

    def test_frozen(self):
        with pytest.raises(Exception):
            MgspConfig().degree = 4

    def test_ablation_builders(self):
        base = MgspConfig.baseline()
        assert not base.shadow_logging and not base.multi_granularity
        full = (
            base.with_shadow_logging()
            .with_multi_granularity()
            .with_fine_locking()
            .with_optimizations()
        )
        assert full.shadow_logging and full.multi_granularity
        assert full.fine_grained_locking and full.greedy_locking


class TestErrorHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in dir(errors):
            cls = getattr(errors, name)
            if isinstance(cls, type) and issubclass(cls, Exception) and cls is not errors.ReproError:
                assert issubclass(cls, errors.ReproError), name

    def test_specific_parents(self):
        assert issubclass(errors.CrashRequested, errors.NvmError)
        assert issubclass(errors.FileNotFound, errors.FsError)
        assert issubclass(errors.TransactionError, errors.DbError)
