"""Flow checker: CFG semantics, corpus twins, interprocedural rules,
pragma handling, CLI/SARIF plumbing, and the tree-is-clean CI gate."""

from __future__ import annotations

import ast
import json
import os
import textwrap

import pytest

from repro.analysis import RULES as TRACE_RULES
from repro.analysis.flow import (
    FLOW_RULES,
    analyze_files,
    build_cfg,
    run_flow,
    run_forward,
    to_sarif,
)
from repro.analysis.flow.__main__ import analyze_fixture, main as flow_main
from repro.analysis.flow.callgraph import ProgramIndex
from repro.analysis.flow.persist import compute_persist_summaries
from repro.analysis.pragmas import TRACE_RULE_NAMES, PragmaTable, scan_pragmas

CORPUS = os.path.join(os.path.dirname(__file__), "analysis_corpus", "flow")
SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")

FLOW_RULE_SET = {
    "unfenced-on-exception-path",
    "mutate-before-validate",
    "lock-order-cycle",
    "exception-path-no-rollback",
}


def analyze(src, module="repro/core/fake.py"):
    text = textwrap.dedent(src)
    return analyze_files({module: text}, modules={module: module})


def rules_of(findings):
    return sorted({f.rule for f in findings})


def cfg_of(src, name):
    tree = ast.parse(textwrap.dedent(src))
    fn = next(
        n
        for n in ast.walk(tree)
        if isinstance(n, ast.FunctionDef) and n.name == name
    )
    return build_cfg(fn)


def call_names_states(cfg):
    """Dataflow whose state is the set of function names called so far."""

    def transfer(node, state):
        names = []
        for call in node.calls:
            func = call.func
            while isinstance(func, ast.Attribute):
                func = func.value
            if isinstance(call.func, ast.Name):
                names.append(call.func.id)
            elif isinstance(call.func, ast.Attribute):
                names.append(call.func.attr)
        return state | frozenset(names)

    return run_forward(cfg, frozenset(), transfer)


# -- CFG construction ------------------------------------------------------


def test_finally_is_duplicated_per_continuation():
    cfg = cfg_of(
        """
        def f():
            try:
                a()
            finally:
                b()
        """,
        "f",
    )
    b_nodes = [
        n
        for n in cfg.nodes.values()
        if n.calls and isinstance(n.calls[0].func, ast.Name) and n.calls[0].func.id == "b"
    ]
    # one finally copy on the normal path, one on the raise path
    assert len(b_nodes) == 2


def test_exception_crosses_inner_finally_to_outer_handler():
    cfg = cfg_of(
        """
        def f():
            try:
                try:
                    a()
                finally:
                    b()
            except ValueError:
                c()
        """,
        "f",
    )
    result = call_names_states(cfg)
    handler = next(n for n in cfg.nodes.values() if n.kind == "handler")
    state = result.state_in(handler.nid)
    # a()'s exception must run the inner finally and still land in the
    # outer handler
    assert state is not None and "b" in state and "a" in state


def test_raise_reaches_raise_exit_through_finally():
    cfg = cfg_of(
        """
        def f():
            try:
                raise ValueError("x")
            finally:
                b()
        """,
        "f",
    )
    result = call_names_states(cfg)
    assert result.raise_state is not None and "b" in result.raise_state
    assert result.exit_state is None  # no normal path out


def test_loop_back_edge_merges_iteration_state():
    cfg = cfg_of(
        """
        def f(items):
            for x in items:
                a()
        """,
        "f",
    )
    result = call_names_states(cfg)
    # after one iteration the loop head re-entry state includes a()
    head = next(n for n in cfg.nodes.values() if isinstance(n.stmt, ast.For))
    assert "a" in result.state_in(head.nid)


def test_return_runs_finally_before_exit():
    src = """
    class F:
        def __init__(self, device):
            self.device = device

        def g(self):
            self.device.nt_store(0, b"x")
            try:
                return 1
            finally:
                self.device.fence()
    """
    module = "repro/core/fake.py"
    index = ProgramIndex.build({module: textwrap.dedent(src)}, {module: module})
    summaries = compute_persist_summaries(index)
    (summary,) = [v for k, v in summaries.items() if k.startswith("F.g@")]
    assert summary[0] == frozenset()  # nothing left unfenced at exit


# -- corpus twins ----------------------------------------------------------


def corpus_files(subdir=""):
    directory = os.path.join(CORPUS, subdir) if subdir else CORPUS
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.endswith(".py")
    )


VIOLATING = corpus_files()
CLEAN = corpus_files("clean")


def name_of(path):
    return os.path.relpath(path, CORPUS)


@pytest.mark.parametrize("path", VIOLATING, ids=name_of)
def test_violating_fixture_trips_exactly_its_rule(path):
    findings, expect = analyze_fixture(path)
    assert expect, f"{path} declares no EXPECT rules"
    fired = {f.rule for f in findings}
    assert fired == set(expect), f"{path}: expected {expect}, fired {sorted(fired)}"


@pytest.mark.parametrize("path", CLEAN, ids=name_of)
def test_clean_twin_produces_no_findings(path):
    findings, expect = analyze_fixture(path)
    assert expect == [], f"{path} should declare EXPECT = []"
    assert findings == [], f"{path}: " + "; ".join(f.format() for f in findings)


def test_every_flow_rule_has_a_violating_fixture():
    covered = set()
    for path in VIOLATING:
        covered.update(analyze_fixture(path)[1])
    assert covered == FLOW_RULE_SET


def test_every_violating_fixture_has_a_clean_twin():
    assert {name_of(p) for p in VIOLATING} == {os.path.basename(p) for p in CLEAN}


def test_findings_carry_line_traces():
    for path in VIOLATING:
        findings, _ = analyze_fixture(path)
        for finding in findings:
            assert finding.trace, f"{path}: {finding.rule} finding has no trace"
            assert all(step.line > 0 for step in finding.trace)


# -- the PR 8 bug class, reintroduced --------------------------------------


def cache_source():
    path = os.path.join(SRC, "repro", "nvm", "cache.py")
    with open(path, "r", encoding="utf-8") as fh:
        return path, fh.read()


def test_real_nt_store_words_is_clean():
    path, text = cache_source()
    findings = analyze_files({path: text}, modules={path: "repro/nvm/cache.py"})
    assert findings == [], "; ".join(f.format() for f in findings)


def test_reintroducing_merged_loop_bug_fails_the_checker():
    # undo the PR 8 fix: merge nt_store_words' validate-all loop into
    # the mutation loop, so a mid-batch validation failure raises with
    # earlier words already applied
    path, text = cache_source()
    tree = ast.parse(text)
    fn = next(
        n
        for n in ast.walk(tree)
        if isinstance(n, ast.FunctionDef) and n.name == "nt_store_words"
    )
    loops = [s for s in fn.body if isinstance(s, ast.For)]
    assert len(loops) == 2, "nt_store_words no longer has the two-loop shape"
    validate, mutate = loops
    checks = [s for s in validate.body if isinstance(s, ast.If)]
    assert checks, "validation loop has no raise guards"
    mutate.body = checks + mutate.body
    fn.body.remove(validate)
    bugged = ast.unparse(tree)

    findings = analyze_files({path: bugged}, modules={path: "repro/nvm/cache.py"})
    assert "mutate-before-validate" in {f.rule for f in findings}


# -- interprocedural rules on inline programs ------------------------------


def test_unfenced_exception_path_found_through_helper_summary():
    findings = analyze(
        """
        class F:
            def __init__(self, device):
                self.device = device

            def _emit(self, off, data):
                self.device.nt_store(off, data)

            def op(self, off, data):
                try:
                    self._emit(off, data)
                    self.device.fence()
                except OSError:
                    pass
                return True
        """
    )
    assert rules_of(findings) == ["unfenced-on-exception-path"]


def test_function_that_leaves_state_unfenced_by_design_is_not_an_op():
    # primitive-shaped helpers leave tokens on *every* path; only
    # functions whose normal exits are clean are treated as op ends
    findings = analyze(
        """
        class F:
            def __init__(self, device):
                self.device = device

            def emit(self, off, data):
                try:
                    self.device.nt_store(off, data)
                except OSError:
                    pass
        """
    )
    assert findings == []


def test_mgl_hierarchy_violation_is_interprocedural():
    findings = analyze(
        """
        class M:
            def __init__(self, mgl):
                self.mgl = mgl

            def _take_file(self, recorder, fid):
                key = self.mgl.file_key(fid)
                recorder.lock(key, "W")

            def bad(self, recorder, fid):
                recorder.lock(("mgsp", fid, 0, 0), "W")
                self._take_file(recorder, fid)
        """
    )
    assert rules_of(findings) == ["lock-order-cycle"]
    assert any("hierarchy" in f.message for f in findings)


def test_consistent_lock_order_is_clean():
    findings = analyze(
        """
        class M:
            def ok(self, recorder, fid):
                recorder.lock(("mgsp-file", fid), "W")
                recorder.lock(("mgsp", fid, 0, 0), "W")
                recorder.unlock(("mgsp", fid, 0, 0))
                recorder.unlock(("mgsp-file", fid))
        """
    )
    assert findings == []


# -- pragmas ---------------------------------------------------------------


def test_pragma_on_store_line_suppresses_flow_finding():
    findings = analyze(
        """
        class Region:
            def __init__(self, device):
                self.device = device

            def commit(self, off, data):
                try:
                    # analysis: allow(unfenced-on-exception-path) -- recovery replays this record
                    self.device.nt_store(off, data)
                    self.device.fence()
                except OSError:
                    pass
                return True
        """
    )
    assert findings == []


def test_pragma_on_handler_line_also_suppresses():
    findings = analyze(
        """
        class Region:
            def __init__(self, device):
                self.device = device

            def commit(self, off, data):
                try:
                    self.device.nt_store(off, data)
                    self.device.fence()
                except OSError:  # analysis: allow(unfenced-on-exception-path) -- recovery replays this record
                    pass
                return True
        """
    )
    assert findings == []


def test_stale_flow_pragma_is_reported():
    findings = analyze(
        """
        def quiet():
            return 1  # analysis: allow(mutate-before-validate) -- left behind
        """
    )
    assert rules_of(findings) == ["stale-pragma"]


def test_unjustified_pragma_does_not_suppress():
    findings = analyze(
        """
        class Region:
            def __init__(self, device):
                self.device = device

            def commit(self, off, data):
                try:
                    self.device.nt_store(off, data)  # analysis: allow(unfenced-on-exception-path)
                    self.device.fence()
                except OSError:
                    pass
                return True
        """
    )
    assert "unfenced-on-exception-path" in rules_of(findings)


def test_pragma_scanner_ignores_docstring_examples():
    pragmas = scan_pragmas(
        textwrap.dedent(
            '''
            """Docs: suppress with  # analysis: allow(unfenced-nt-store) -- why."""
            x = 1  # analysis: allow(mgl-lock-order) -- real one
            '''
        )
    )
    assert [(p.rule, p.line) for p in pragmas] == [("mgl-lock-order", 3)]


def test_trace_rule_names_stay_in_sync_with_analyzer():
    assert set(TRACE_RULE_NAMES) == set(TRACE_RULES)


# -- CLI / serialization ---------------------------------------------------


def test_cli_corpus_mode_green(capsys):
    assert flow_main(["--corpus", CORPUS]) == 0
    assert "corpus" in capsys.readouterr().out


def test_cli_fixture_exit_codes(tmp_path, capsys):
    violating = os.path.join(CORPUS, "mutate_before_validate.py")
    assert flow_main(["--program", violating]) == 1
    clean = os.path.join(CORPUS, "clean", "mutate_before_validate.py")
    assert flow_main(["--program", clean]) == 0
    stale = tmp_path / "stale.py"
    stale.write_text('EXPECT = ["lock-order-cycle"]\n\n\ndef f():\n    pass\n')
    assert flow_main(["--program", str(stale)]) == 2
    assert "MISSING" in capsys.readouterr().out


def test_cli_json_and_sarif_outputs(tmp_path, capsys):
    violating = os.path.join(CORPUS, "lock_order_cycle.py")
    out_json = tmp_path / "findings.json"
    out_sarif = tmp_path / "findings.sarif"
    rc = flow_main(
        [violating, "--json", str(out_json), "--sarif", str(out_sarif)]
    )
    capsys.readouterr()
    assert rc == 1
    payload = json.loads(out_json.read_text())
    assert payload["tool"] == "repro.analysis.flow"
    assert payload["findings"] and payload["findings"][0]["rule"]

    sarif = json.loads(out_sarif.read_text())
    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    declared = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert FLOW_RULE_SET <= declared
    for result in run["results"]:
        assert result["ruleId"] in declared
        assert result["locations"][0]["physicalLocation"]["region"]["startLine"] >= 1


def test_sarif_of_empty_findings_is_valid():
    sarif = json.loads(to_sarif([]))
    assert sarif["runs"][0]["results"] == []


# -- the CI gate -----------------------------------------------------------


def test_src_repro_is_flow_clean():
    findings = run_flow([os.path.join(SRC, "repro")])
    assert findings == [], "\n".join(f.format() for f in findings)
