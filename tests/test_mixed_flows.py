"""Interleavings of every MGSP flow: writes, txns, mmap, checkpoint,
growth, crash — the combinations no single-feature test exercises."""

from __future__ import annotations

import random

import pytest

from repro.core import MgspConfig, MgspFilesystem, recover, verify_file
from repro.errors import CrashRequested
from repro.nvm.crash import CrashPlan
from repro.nvm.device import NvmDevice

CAP = 1 << 20


@pytest.fixture
def fs():
    return MgspFilesystem(device_size=64 << 20, config=MgspConfig(degree=16))


class TestInterleavings:
    def test_txn_then_checkpoint_then_txn(self, fs):
        f = fs.create("x", CAP)
        with fs.begin_transaction(f) as txn:
            txn.write(0, b"one")
        f.checkpoint()
        with fs.begin_transaction(f) as txn:
            txn.write(3, b"two")
        assert f.read(0, 6) == b"onetwo"
        assert verify_file(f).ok

    def test_mmap_and_write_coexist(self, fs):
        f = fs.create("x", CAP)
        mm = f.mmap()
        f.write(0, b"api")
        mm[3:6] = b"map"
        assert f.read(0, 6) == b"apimap"
        assert mm[0:6] == b"apimap"

    def test_plain_writes_excluded_during_txn(self, fs):
        """A staged transaction owns the handle's write path: a plain
        (or mmap) store would plan against staged bitmap words and leak
        them into its own commit — so it is rejected until resolution."""
        from repro.errors import TransactionError

        f = fs.create("x", CAP)
        txn = fs.begin_transaction(f)
        txn.write(0, b"staged")
        mm = f.mmap()
        with pytest.raises(TransactionError):
            mm[100:103] = b"now"
        with pytest.raises(TransactionError):
            f.write(100, b"now")
        with pytest.raises(TransactionError):
            fs.begin_transaction(f)  # no nested transactions either
        txn.rollback()
        f.write(100, b"now")  # fine after resolution
        assert f.read(100, 3) == b"now"
        assert f.read(0, 6) != b"staged"

    def test_growth_inside_txn(self, fs):
        f = fs.create("x", CAP)
        f.write(0, b"small")
        h0 = f.tree.height
        with fs.begin_transaction(f) as txn:
            txn.write(500_000, b"far")
        assert f.tree.height >= h0
        assert f.read(500_000, 3) == b"far"
        assert f.read(0, 5) == b"small"
        assert verify_file(f).ok

    def test_checkpoint_mid_fuzz_preserves_everything(self, fs):
        f = fs.create("x", CAP)
        rng = random.Random(3)
        ref = bytearray(CAP)
        for i in range(300):
            off = rng.randrange(0, CAP - 1)
            ln = min(rng.choice([64, 4096, 30_000]), CAP - off)
            payload = bytes([rng.randrange(1, 255)]) * ln
            f.write(off, payload)
            ref[off : off + ln] = payload
            if i % 60 == 59:
                f.checkpoint()
            if i % 45 == 44:
                with fs.begin_transaction(f) as txn:
                    txn.write(off, payload)  # idempotent txn write
        assert f.read(0, f.size) == bytes(ref[: f.size])
        assert verify_file(f).ok

    def test_crash_between_txn_and_plain_write(self, fs):
        f = fs.create("x", CAP)
        fs.device.drain()
        with fs.begin_transaction(f) as txn:
            txn.write(0, b"txn-committed")
        fs.device.crash_plan = CrashPlan(crash_after=3)
        try:
            f.write(50_000, b"maybe")
        except CrashRequested:
            pass
        image = fs.device.crash_image(rng=random.Random(1))
        fs2, _ = recover(NvmDevice.from_image(bytes(image)), config=MgspConfig(degree=16))
        f2 = fs2.open("x")
        assert f2.read(0, 13) == b"txn-committed"
        assert f2.read(50_000, 5) in (b"", b"maybe", b"\0" * 5)

    def test_two_files_with_independent_txns(self, fs):
        a = fs.create("a", CAP)
        b = fs.create("b", CAP)
        ta = fs.begin_transaction(a)
        tb = fs.begin_transaction(b)
        ta.write(0, b"AAAA")
        tb.write(0, b"BBBB")
        ta.commit()
        tb.rollback()
        assert a.read(0, 4) == b"AAAA"
        assert b.read(0, 4) == b""
        assert verify_file(a).ok and verify_file(b).ok

    def test_reopen_after_everything(self, fs):
        f = fs.create("x", CAP)
        f.write(0, b"plain")
        with fs.begin_transaction(f) as txn:
            txn.write(10, b"txn")
        f.checkpoint()
        f.write(20, b"more")
        f.close()
        f2 = fs.open("x")
        assert f2.read(0, 5) == b"plain"
        assert f2.read(10, 3) == b"txn"
        assert f2.read(20, 4) == b"more"

    def test_rdonly_handle_sees_prior_writes_not_txn_api(self, fs):
        from repro.fsapi.interface import OpenFlags

        f = fs.create("x", CAP)
        f.write(0, b"public")
        f.close()
        ro = fs.open("x", OpenFlags.RDONLY)
        assert ro.read(0, 6) == b"public"
        txn = fs.begin_transaction(ro)
        with pytest.raises(Exception):
            txn.write(0, b"nope")
        txn.rollback()
