"""Differential audit of the PR-7 ``IntervalSet.add`` fast paths.

PR-7 added three shortcuts to ``add`` (append-at-end, extend-last,
containment no-op) ahead of the general bisect-and-splice path. This
module pins them against a reference implementation that *only* runs
the slow path, with hypothesis steering at the edge cases the fast
paths gate on: zero-length ranges, adjacent-touching ranges
(``start == last_end``), and exact-boundary containment.

Audit verdict (PR-8): exhaustive enumeration over small universes plus
these properties found **no divergence** — the fast paths are correct.
The suite stays as a regression pin.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nvm.intervals import IntervalSet


class SlowIntervalSet(IntervalSet):
    """Reference: the pre-PR-7 general path only, no shortcuts."""

    def add(self, start: int, end: int) -> None:  # noqa: D102
        from bisect import bisect_left, bisect_right

        if start >= end:
            return
        starts, ends = self._starts, self._ends
        lo = bisect_left(ends, start)
        hi = bisect_right(starts, end)
        if lo < hi:
            start = min(start, starts[lo])
            end = max(end, ends[hi - 1])
        starts[lo:hi] = [start]
        ends[lo:hi] = [end]


def _points(s: IntervalSet, universe: int):
    return {p for p in range(universe) if s.contains(p)}


# Small coordinates make touching/overlap/containment collisions likely;
# (a, a) zero-length and (a, a+0..3) adjacent shapes appear constantly.
_range = st.tuples(st.integers(0, 24), st.integers(0, 6)).map(
    lambda t: (t[0], t[0] + t[1])
)


@settings(max_examples=400, deadline=None)
@given(st.lists(_range, max_size=24))
def test_add_fast_paths_match_slow_path(ranges):
    fast, slow = IntervalSet(), SlowIntervalSet()
    for start, end in ranges:
        fast.add(start, end)
        slow.add(start, end)
        assert list(fast) == list(slow), (ranges, start, end)
        # Normalization invariants the fast paths must preserve.
        prev_end = None
        for s, e in fast:
            assert s < e
            if prev_end is not None:
                assert s > prev_end  # sorted AND coalesced (no touching)
            prev_end = e


@settings(max_examples=200, deadline=None)
@given(st.lists(_range, max_size=16), _range)
def test_add_matches_point_set_model(ranges, probe):
    model = set()
    s = IntervalSet()
    for start, end in ranges:
        s.add(start, end)
        model |= set(range(start, end))
    assert _points(s, 32) == model
    assert s.total() == len(model)
    lo, hi = probe
    assert s.covers(lo, hi) == set(range(lo, hi)).issubset(model)
    assert s.overlaps(lo, hi) == bool(set(range(lo, hi)) & model)
    assert _points(s.intersect(lo, hi), 32) == set(range(lo, hi)) & model


def test_add_exhaustive_small_universe():
    """Every ≤2-interval base × every add over [0, 8): the fast paths
    and the slow path agree byte-for-byte, including zero-length adds
    and start == last_end adjacency."""
    n = 8
    singles = [(a, b) for a in range(n) for b in range(a + 1, n + 1)]
    bases = [()] + [(iv,) for iv in singles] + [
        (p, q) for p, q in itertools.combinations(singles, 2) if p[1] < q[0]
    ]
    adds = [(a, b) for a in range(n + 1) for b in range(a, n + 1)]  # incl. empty
    for base in bases:
        for add in adds:
            fast, slow = IntervalSet(base), SlowIntervalSet(base)
            fast.add(*add)
            slow.add(*add)
            assert list(fast) == list(slow), (base, add)
