"""Metrics registry: instruments, label identity, percentile parity."""

from __future__ import annotations

import pytest

from repro.obs.registry import (
    DEFAULT_NS_BUCKETS,
    Histogram,
    MetricsRegistry,
    percentile,
    render_labels,
)


def _reference_percentile(samples, pct):
    """The math previously inlined in FioResult.latency_percentile."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = int(round(pct / 100 * (len(ordered) - 1)))
    rank = min(len(ordered) - 1, max(0, rank))
    return ordered[rank]


@pytest.mark.parametrize("pct", [0, 1, 25, 50, 90, 99, 99.9, 100])
@pytest.mark.parametrize(
    "samples",
    [
        [5.0],
        [3.0, 1.0, 2.0],
        list(range(100)),
        [7.0] * 10,
        [2.0 ** i for i in range(20)],
    ],
)
def test_percentile_matches_fio_inline_math(samples, pct):
    assert percentile(samples, pct) == _reference_percentile(samples, pct)


def test_percentile_empty_is_zero():
    assert percentile([], 50) == 0.0


def test_counter_and_gauge_basics():
    reg = MetricsRegistry()
    reg.counter("ops_total").inc()
    reg.counter("ops_total").inc(2.0)
    assert reg.counter("ops_total").value == 3.0

    reg.gauge("depth").set(4.0)
    reg.gauge("depth").add(-1.0)
    assert reg.gauge("depth").value == 3.0


def test_label_identity_and_ordering():
    reg = MetricsRegistry()
    # Same name+labels -> same instrument, regardless of kwarg order.
    a = reg.counter("writes_total", fs="MGSP", op="write")
    b = reg.counter("writes_total", op="write", fs="MGSP")
    assert a is b
    # Different label values -> distinct instruments.
    c = reg.counter("writes_total", fs="MGSP", op="read")
    assert c is not a
    assert render_labels(a.labels) == '{fs="MGSP",op="write"}'
    assert render_labels(()) == ""


def test_histogram_accounting():
    hist = Histogram("lat_ns", ())
    for v in (10.0, 100.0, 1000.0, 1e12):
        hist.observe(v)
    assert hist.count == 4
    assert hist.sum == pytest.approx(10.0 + 100.0 + 1000.0 + 1e12)
    assert hist.min == 10.0
    assert hist.max == 1e12
    assert hist.mean == pytest.approx(hist.sum / 4)
    # The 1e12 sample is beyond the last bound -> overflow bucket.
    assert hist.counts[-1] == 1
    bounds = [b for b, _ in hist.nonzero_buckets()]
    assert bounds[-1] == float("inf")
    assert sum(n for _, n in hist.nonzero_buckets()) == 4


def test_histogram_percentile_bounds():
    hist = Histogram("lat_ns", ())
    samples = [float(16 << i) for i in range(10)] * 5
    for v in samples:
        hist.observe(v)
    for pct in (0, 50, 90, 99, 100):
        p = hist.percentile(pct)
        assert hist.min <= p <= hist.max
    # Bucketed nearest-rank can only round up to a bucket bound, never
    # past the observed maximum.
    assert hist.percentile(100) == hist.max
    assert Histogram("empty", ()).percentile(50) == 0.0


def test_histogram_percentile_vs_exact_within_one_bucket():
    hist = Histogram("lat_ns", ())
    samples = [float(i * 37 % 5000 + 1) for i in range(500)]
    for v in samples:
        hist.observe(v)
    for pct in (50, 90, 99):
        exact = percentile(samples, pct)
        bucketed = hist.percentile(pct)
        # Bucketed answer = upper bound of the containing power-of-two
        # bucket: never below the exact value's bucket lower bound.
        assert bucketed >= exact / 2
        assert bucketed <= max(exact * 2, DEFAULT_NS_BUCKETS[0])


def test_snapshot_is_deterministic():
    def build():
        reg = MetricsRegistry()
        reg.counter("a_total", k="1").inc(3)
        reg.gauge("g").set(2.5)
        h = reg.histogram("h_ns")
        for v in (1.0, 64.0, 4096.0):
            h.observe(v)
        return reg.snapshot()

    assert build() == build()
    snap = build()
    assert snap["counters"]['a_total{k="1"}'] == 3.0
    assert snap["histograms"]["h_ns"]["count"] == 3
