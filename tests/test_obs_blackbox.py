"""Black-box bundles and the post-mortem narrator.

The acceptance path: a failing run emits a bundle whose embedded
``--at N`` command re-triggers the failure, and the post-mortem on the
planted-fixture bundle names the unfenced words and the protocol step
that wrote them.
"""

from __future__ import annotations

import json

import pytest

from repro.nvm.crash import CrashPolicy

from repro.obs import blackbox, postmortem
from repro.obs.__main__ import main as obs_main

# the planted misordered-commit fixture: DROP_ALL right after the first
# commit word becomes durable loses record 1's payload
WORKLOAD = "toy-misordered"
CONFIG = "sync"
CRASH_AT = 4
SEED = 7


@pytest.fixture(scope="module")
def planted_bundle():
    return blackbox.capture(
        WORKLOAD,
        CONFIG,
        CRASH_AT,
        seed=SEED,
        policy=CrashPolicy.DROP_ALL,
        kind="infer-true-bug",
    )


def test_bundle_contents(planted_bundle):
    b = planted_bundle
    assert b["blackbox_version"] == blackbox.BLACKBOX_VERSION
    assert b["crashed"] is True
    assert b["violations_reproduced"] == [
        "record 1: committed but payload is torn/missing"
    ]
    assert b["dropped_words"]["count"] == 16
    assert b["reproducer"] == (
        f"python -m repro.crashsweep --workload {WORKLOAD} --configs {CONFIG}"
        f" --policies drop_all --at {CRASH_AT} --seed {SEED}"
    )
    assert b["held_locks"] == []
    assert b["flight"]["events"]  # ring tail present
    assert len(b["image_sha256"]) == 64


def test_embedded_reproducer_retriggers(planted_bundle):
    """The bundle's ``--at N`` line must exit 1 (failure re-triggered)."""
    from repro.crashsweep.__main__ import main as sweep_main

    argv = planted_bundle["reproducer"].split()[3:]  # strip python -m repro.crashsweep
    assert sweep_main(argv) == 1


def test_bundle_round_trip(planted_bundle, tmp_path):
    path = blackbox.write_bundle(planted_bundle, str(tmp_path))
    assert path.endswith(
        f"blackbox-infer-true-bug-{WORKLOAD}-{CONFIG}-drop_all-at{CRASH_AT}.json"
    )
    loaded = blackbox.load_bundle(path)
    assert loaded == json.loads(json.dumps(planted_bundle))


def test_capture_is_deterministic(planted_bundle):
    again = blackbox.capture(
        WORKLOAD, CONFIG, CRASH_AT, seed=SEED, policy=CrashPolicy.DROP_ALL,
        kind="infer-true-bug",
    )
    assert blackbox.render(again) == blackbox.render(planted_bundle)


def test_postmortem_names_words_and_step(planted_bundle):
    report = postmortem.analyze(planted_bundle)
    assert report["reproduced"] is True
    assert report["violations"] == planted_bundle["violations"]
    assert report["dropped_words"] == 16
    [step] = report["steps"]
    assert step["region"] == "toy_data"
    assert step["op"] == "record"  # the protocol step that wrote them
    assert step["flushed_before_crash"] is False  # never flushed pre-crash
    assert step["saved_by"]["event"] == 5  # the fence that would have saved them
    assert step["saved_by"]["op"] == "record"
    # every dropped word resolves to a writer before the crash
    assert all(row["writer"]["event"] < CRASH_AT for row in report["words"])
    text = postmortem.render(report)
    assert "REPRODUCED" in text
    assert "toy_data" in text and "'record'" in text
    assert "fence at event 5" in text


def test_postmortem_cli(planted_bundle, tmp_path):
    path = blackbox.write_bundle(planted_bundle, str(tmp_path))
    assert obs_main(["postmortem", path]) == 0
    out = tmp_path / "report.json"
    assert obs_main(["postmortem", path, "--json", "--out", str(out)]) == 0
    report = json.loads(out.read_text())
    assert report["steps"][0]["region"] == "toy_data"


def test_postmortem_cli_not_reproduced(tmp_path):
    """KEEP_ALL at the same point keeps every word: nothing lost, the
    failure does not reproduce, and the CLI says so with exit 3."""
    bundle = blackbox.capture(
        WORKLOAD, CONFIG, CRASH_AT, seed=SEED, policy=CrashPolicy.KEEP_ALL
    )
    path = blackbox.write_bundle(bundle, str(tmp_path))
    assert obs_main(["postmortem", path]) == 3


def test_service_error_bundle(tmp_path):
    from repro.service.service import MgspService, Request, ServiceConfig

    config = ServiceConfig(
        shards=2, flight_capacity=64, bundle_dir=str(tmp_path)
    )
    service = MgspService(config)
    service.register("alice")
    service.register("bob")
    service.submit("alice", Request("write", 0, 512, 10.0))
    service.submit("bob", Request("frobnicate", 0, 64, 20.0))
    with pytest.raises(ValueError, match="unknown request kind"):
        service.run()
    [bundle] = service.error_bundles
    assert bundle["kind"] == "service-error"
    assert bundle["tenant"] == "bob"
    assert bundle["error"]["type"] == "ValueError"
    assert bundle["flight"] is not None
    counters = {
        name for name in bundle["metrics"]["counters"]
        if name.startswith("service_tenant_errors_total")
    }
    assert counters
    files = list(tmp_path.glob("blackbox-service-error-*.json"))
    assert len(files) == 1
