"""The demo shell's command surface."""

from __future__ import annotations

import pytest

from repro.shell import Shell


@pytest.fixture
def shell():
    return Shell(device_size=64 << 20, seed=1)


class TestCommands:
    def test_write_read(self, shell):
        assert "wrote" in shell.execute("write notes 0 hello")
        assert shell.execute("read notes 0 5") == "hello"

    def test_fill(self, shell):
        shell.execute("fill big 0 64k z")
        assert shell.execute("read big 0 4") == "zzzz"

    def test_txn(self, shell):
        out = shell.execute("txn acct 0=debit 4k=credit")
        assert "committed 2 writes" in out
        assert shell.execute("read acct 0 5") == "debit"
        assert shell.execute("read acct 4k 6") == "credit"

    def test_crash_recovers_state(self, shell):
        shell.execute("write notes 0 survivor")
        out = shell.execute("crash 0.5")
        assert "power loss" in out
        assert shell.execute("read notes 0 8") == "survivor"

    def test_checkpoint(self, shell):
        shell.execute("fill f 0 64k q")
        assert "written back" in shell.execute("checkpoint f")

    def test_inspections(self, shell):
        shell.execute("write notes 0 x")
        assert "height=" in shell.execute("tree notes")
        assert "metadata log" in shell.execute("metalog")
        assert "volume layout" in shell.execute("volume")
        assert "stores" in shell.execute("device")
        assert "stores=" in shell.execute("stats")

    def test_verify(self, shell):
        shell.execute("fill f 0 16k a")
        assert shell.execute("verify f").startswith("OK")

    def test_help_and_unknown(self, shell):
        assert "commands:" in shell.execute("help")
        assert "unknown command" in shell.execute("frobnicate")
        assert shell.execute("") == ""

    def test_usage_error_handled(self, shell):
        assert "usage error" in shell.execute("write onlyname")

    def test_fs_error_handled(self, shell):
        assert "error:" in shell.execute("write f 100g boom")

    def test_quit(self, shell):
        assert shell.execute("quit") is None
        assert shell.execute("exit") is None
