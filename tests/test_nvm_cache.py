"""StoreBuffer semantics: visibility, flush/fence ordering, crash images."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import OutOfRangeError, TornWriteError
from repro.nvm.cache import StoreBuffer
from repro.util import CACHE_LINE

SIZE = 1 << 16


@pytest.fixture
def buf():
    return StoreBuffer(SIZE)


class TestVisibility:
    def test_load_sees_latest_store(self, buf):
        buf.store(100, b"hello")
        assert buf.load(100, 5) == b"hello"

    def test_store_is_not_durable(self, buf):
        buf.store(100, b"hello")
        assert buf.snapshot_durable()[100:105] == b"\0" * 5

    def test_flush_alone_is_not_durable(self, buf):
        buf.store(100, b"hello")
        buf.flush(100, 5)
        assert buf.snapshot_durable()[100:105] == b"\0" * 5

    def test_flush_fence_is_durable(self, buf):
        buf.store(100, b"hello")
        buf.flush(100, 5)
        buf.fence()
        assert buf.snapshot_durable()[100:105] == b"hello"

    def test_persist_helper(self, buf):
        buf.store(200, b"xyz")
        buf.persist(200, 3)
        assert buf.snapshot_durable()[200:203] == b"xyz"

    def test_fence_without_flush_persists_nothing(self, buf):
        buf.store(100, b"hello")
        buf.fence()
        assert buf.snapshot_durable()[100:105] == b"\0" * 5

    def test_flush_covers_whole_cache_lines(self, buf):
        buf.store(0, b"a" * 128)
        # Flushing one byte flushes its whole line.
        buf.flush(10, 1)
        buf.fence()
        durable = buf.snapshot_durable()
        assert durable[0:CACHE_LINE] == b"a" * CACHE_LINE
        assert durable[CACHE_LINE : 2 * CACHE_LINE] == b"\0" * CACHE_LINE

    def test_flush_returns_line_count(self, buf):
        buf.store(0, b"a" * 256)
        assert buf.flush(0, 256) == 4
        assert buf.flush(0, 256) == 0  # already clean

    def test_drain_persists_everything(self, buf):
        buf.store(0, b"a" * 1000)
        buf.store(5000, b"b" * 10)
        buf.drain()
        assert buf.snapshot_durable()[:1000] == b"a" * 1000
        assert buf.snapshot_durable()[5000:5010] == b"b" * 10
        assert not buf.dirty and not buf.pending


class TestBounds:
    def test_store_out_of_range(self, buf):
        with pytest.raises(OutOfRangeError):
            buf.store(SIZE - 2, b"abc")

    def test_load_out_of_range(self, buf):
        with pytest.raises(OutOfRangeError):
            buf.load(SIZE, 1)

    def test_negative_offset(self, buf):
        with pytest.raises(OutOfRangeError):
            buf.store(-1, b"a")


class TestAtomicity:
    def test_atomic_store_requires_alignment(self, buf):
        with pytest.raises(TornWriteError):
            buf.atomic_store_u64(9, 1)

    def test_atomic_store_roundtrip(self, buf):
        buf.atomic_store_u64(64, 0xDEADBEEFCAFEBABE)
        assert buf.load_u64(64) == 0xDEADBEEFCAFEBABE

    def test_aligned_u64_never_tears_in_crash_image(self, buf):
        buf.atomic_store_u64(128, 0x1111111111111111)
        for trial in range(20):
            image = buf.crash_image(rng=random.Random(trial))
            word = bytes(image[128:136])
            assert word in (b"\0" * 8, (0x1111111111111111).to_bytes(8, "little"))


class TestCrashImages:
    def test_unfenced_words_listed(self, buf):
        buf.store(0, b"x" * 16)
        assert buf.unfenced_words() == [0, 8]

    def test_crash_image_with_no_persistence(self, buf):
        buf.store(0, b"x" * 16)
        image = buf.crash_image(persist_words=[])
        assert bytes(image[:16]) == b"\0" * 16

    def test_crash_image_with_full_persistence(self, buf):
        buf.store(0, b"x" * 16)
        image = buf.crash_image(persist_words=[0, 8])
        assert bytes(image[:16]) == b"x" * 16

    def test_crash_image_partial_words(self, buf):
        buf.store(0, b"x" * 16)
        image = buf.crash_image(persist_words=[8])
        assert bytes(image[:8]) == b"\0" * 8
        assert bytes(image[8:16]) == b"x" * 8

    def test_crash_image_rejects_non_candidate_words(self, buf):
        buf.store(0, b"x" * 8)
        with pytest.raises(OutOfRangeError):
            buf.crash_image(persist_words=[512])

    def test_flushed_but_unfenced_may_or_may_not_persist(self, buf):
        buf.store(0, b"x" * 8)
        buf.flush(0, 8)
        assert buf.unfenced_words() == [0]
        lost = buf.crash_image(persist_words=[])
        kept = buf.crash_image(persist_words=[0])
        assert bytes(lost[:8]) == b"\0" * 8
        assert bytes(kept[:8]) == b"x" * 8

    def test_fenced_data_survives_every_crash(self, buf):
        buf.store(0, b"safe....")
        buf.persist(0, 8)
        buf.store(100, b"racy....")
        for trial in range(10):
            image = buf.crash_image(rng=random.Random(trial))
            assert bytes(image[:8]) == b"safe...."

    @given(st.binary(min_size=1, max_size=200), st.integers(0, 1000))
    def test_crash_image_word_granular(self, data, offset):
        buf = StoreBuffer(SIZE)
        buf.store(offset, data)
        image = buf.crash_image(rng=random.Random(1))
        # Every aligned 8-byte word is either fully old or fully new.
        start = (offset // 8) * 8
        end = ((offset + len(data) + 7) // 8) * 8
        for w in range(start, end, 8):
            word = bytes(image[w : w + 8])
            assert word in (b"\0" * 8, bytes(buf.working[w : w + 8]))
