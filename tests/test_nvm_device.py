"""NvmDevice: counters, tracer wiring, crash plans, remounting."""

from __future__ import annotations

import pytest

from repro.errors import CrashRequested
from repro.nvm.crash import CrashPlan, CrashPolicy
from repro.nvm.device import DeviceStats, NvmDevice
from repro.nvm.timing import OptaneTiming
from repro.sim.trace import TraceRecorder


class TestCounters:
    def test_store_counts_bytes(self, device):
        device.store(0, b"x" * 100)
        assert device.stats.stored_bytes == 100
        assert device.stats.stores == 1

    def test_nt_store_counts_and_flushes(self, device):
        device.nt_store(0, b"x" * 128)
        assert device.stats.stored_bytes == 128
        assert device.stats.flushed_lines == 2

    def test_load_counts(self, device):
        device.store(0, b"x" * 10)
        device.load(0, 10)
        assert device.stats.loaded_bytes == 10
        assert device.stats.loads == 1

    def test_fence_counts(self, device):
        device.fence()
        assert device.stats.fences == 1

    def test_snapshot_delta(self, device):
        device.store(0, b"x" * 10)
        snap = device.stats.snapshot()
        device.store(0, b"y" * 30)
        delta = device.stats.delta(snap)
        assert delta.stored_bytes == 30
        assert delta.stores == 1

    def test_write_amplification(self, device):
        device.nt_store(0, b"x" * 2048)
        assert device.write_amplification(api_bytes=1024) == 2.0
        assert device.write_amplification(api_bytes=0) == 0.0


class TestTracer:
    def test_media_ops_priced_through_tracer(self, device):
        recorder = TraceRecorder(OptaneTiming())
        device.tracer = recorder
        recorder.begin_op("x")
        device.nt_store(0, b"a" * 4096)
        device.fence()
        device.load(0, 4096)
        trace = recorder.end_op()
        kinds = [seg[0] for seg in trace.segments]
        assert "io" in kinds and "compute" in kinds
        assert trace.duration_ns() > 0

    def test_cached_store_is_cheap(self, device):
        recorder = TraceRecorder(OptaneTiming())
        device.tracer = recorder
        recorder.begin_op("x")
        device.store(0, b"a" * 4096)
        cached = recorder.end_op().duration_ns()
        recorder.begin_op("y")
        device.nt_store(4096, b"a" * 4096)
        media = recorder.end_op().duration_ns()
        assert cached < media / 3


class TestCrashPlan:
    def test_fires_after_n_events(self, device):
        device.crash_plan = CrashPlan(crash_after=2, kinds={"store"})
        device.store(0, b"a")
        device.store(8, b"b")
        with pytest.raises(CrashRequested):
            device.store(16, b"c")

    def test_fires_once(self, device):
        device.crash_plan = CrashPlan(crash_after=0, kinds={"store"})
        with pytest.raises(CrashRequested):
            device.store(0, b"a")
        device.store(8, b"b")  # plan already fired: no second crash

    def test_other_kinds_ignored(self, device):
        device.crash_plan = CrashPlan(crash_after=0, kinds={"fence"})
        device.store(0, b"a")
        device.flush(0, 1)
        with pytest.raises(CrashRequested):
            device.fence()

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            CrashPlan(crash_after=-1)


class TestRemount:
    def test_from_image_preserves_content(self, device):
        device.store(100, b"payload")
        device.persist(100, 7)
        image = device.crash_image(persist_words=[])
        new = NvmDevice.from_image(bytes(image))
        assert new.load(100, 7) == b"payload"
        assert new.size == device.size

    def test_from_image_is_fully_durable(self, device):
        device.store(0, b"abc")
        device.persist(0, 3)
        new = NvmDevice.from_image(bytes(device.crash_image(persist_words=[])))
        assert new.unfenced_words() == []


class TestCrashPolicyEnum:
    def test_members(self):
        assert CrashPolicy.DROP_ALL.value == "drop_all"
        assert CrashPolicy.KEEP_ALL.value == "keep_all"
        assert CrashPolicy.RANDOM.value == "random"
