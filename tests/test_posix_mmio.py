"""POSIX interposition layer + the failure-atomic mmap view."""

from __future__ import annotations

import pytest

from repro.core import MgspFilesystem
from repro.core.mmio import MgspMmap
from repro.errors import BadFileDescriptor, FileNotFound, FsError
from repro.posix import Interposer


@pytest.fixture
def posix():
    return Interposer(device_size=64 << 20)


class TestInterposer:
    def test_open_create_routes_by_flag(self, posix):
        atomic_fd = posix.open("a", posix.O_CREAT | posix.O_ATOMIC)
        plain_fd = posix.open("b", posix.O_CREAT)
        assert posix.is_atomic(atomic_fd)
        assert not posix.is_atomic(plain_fd)
        assert posix.mgsp.exists("a") and not posix.underlying.exists("a")
        assert posix.underlying.exists("b") and not posix.mgsp.exists("b")

    def test_pread_pwrite(self, posix):
        fd = posix.open("f", posix.O_CREAT | posix.O_ATOMIC)
        assert posix.pwrite(fd, b"hello", 100) == 5
        assert posix.pread(fd, 5, 100) == b"hello"

    def test_cursor_io_and_lseek(self, posix):
        fd = posix.open("f", posix.O_CREAT | posix.O_ATOMIC)
        posix.write(fd, b"abc")
        posix.write(fd, b"def")
        posix.lseek(fd, 0)
        assert posix.read(fd, 6) == b"abcdef"
        assert posix.lseek(fd, -2, posix.SEEK_END) == 4
        assert posix.read(fd, 2) == b"ef"
        posix.lseek(fd, 1, posix.SEEK_CUR)
        assert posix.lseek(fd, 0, posix.SEEK_CUR) == 7

    def test_seek_before_start_rejected(self, posix):
        fd = posix.open("f", posix.O_CREAT)
        with pytest.raises(FsError):
            posix.lseek(fd, -1)

    def test_open_missing_without_creat(self, posix):
        with pytest.raises(FileNotFound):
            posix.open("ghost", posix.O_RDWR)

    def test_close_invalidates_fd(self, posix):
        fd = posix.open("f", posix.O_CREAT)
        posix.close(fd)
        with pytest.raises(BadFileDescriptor):
            posix.pread(fd, 1, 0)

    def test_fds_are_distinct(self, posix):
        a = posix.open("x", posix.O_CREAT)
        b = posix.open("y", posix.O_CREAT)
        assert a != b

    def test_fsync_and_fstat(self, posix):
        fd = posix.open("f", posix.O_CREAT | posix.O_ATOMIC)
        posix.pwrite(fd, b"123456", 0)
        posix.fsync(fd)
        assert posix.fstat_size(fd) == 6

    def test_unlink_searches_both_namespaces(self, posix):
        fd = posix.open("gone", posix.O_CREAT | posix.O_ATOMIC)
        posix.close(fd)
        posix.unlink("gone")
        assert not posix.mgsp.exists("gone")
        with pytest.raises(FileNotFound):
            posix.unlink("gone")

    def test_atomic_writes_cheaper_than_plain_synced(self, posix):
        """The headline: O_ATOMIC (MGSP) write+fsync beats the kernel FS."""
        a = posix.open("fast", posix.O_CREAT | posix.O_ATOMIC)
        b = posix.open("slow", posix.O_CREAT)
        posix.mgsp.take_traces()
        posix.underlying.take_traces()
        posix.pwrite(a, b"z" * 4096, 0)
        posix.fsync(a)
        posix.pwrite(b, b"z" * 4096, 0)
        posix.fsync(b)
        fast = sum(t.duration_ns(32) for t in posix.mgsp.take_traces())
        slow = sum(t.duration_ns(32) for t in posix.underlying.take_traces())
        assert fast < slow


class TestMgspMmap:
    @pytest.fixture
    def mm(self):
        fs = MgspFilesystem(device_size=64 << 20)
        handle = fs.create("m", capacity=256 * 1024)
        return MgspMmap(handle)

    def test_store_load_roundtrip(self, mm):
        mm[0:5] = b"hello"
        assert mm[0:5] == b"hello"

    def test_single_byte(self, mm):
        mm[10:11] = b"!"
        assert mm[10] == b"!"

    def test_negative_index(self, mm):
        mm[len(mm) - 1 : len(mm)] = b"z"
        assert mm[-1] == b"z"

    def test_unwritten_reads_zero(self, mm):
        assert mm[1000:1010] == b"\0" * 10

    def test_mismatched_store_rejected(self, mm):
        with pytest.raises(ValueError):
            mm[0:10] = b"short"

    def test_strided_rejected(self, mm):
        with pytest.raises(ValueError):
            mm[0:10:2]

    def test_out_of_bounds(self, mm):
        with pytest.raises(IndexError):
            mm[len(mm)]

    def test_each_store_is_atomic_and_durable(self, mm):
        """A store through the mapping is durable at return — no msync
        needed (the property Libnvmmio lacks)."""
        handle = mm.handle
        fs = handle.fs
        fs.device.drain()
        mm[0:128] = b"q" * 128
        # Drop everything unfenced: the store must survive.
        import random

        from repro.core import MgspConfig, recover
        from repro.nvm.device import NvmDevice

        image = fs.device.crash_image(persist_words=[])
        fs2, _ = recover(NvmDevice.from_image(bytes(image)), config=fs.config)
        assert fs2.open("m").read(0, 128) == b"q" * 128

    def test_flush_is_fence(self, mm):
        mm[0:4] = b"sync"
        mm.flush()
        assert mm[0:4] == b"sync"

    def test_closed_view_rejected(self, mm):
        mm.close()
        with pytest.raises(FsError):
            mm[0:1]

    def test_context_manager(self):
        fs = MgspFilesystem(device_size=64 << 20)
        handle = fs.create("m", capacity=4096)
        with MgspMmap(handle) as mm:
            mm[0:2] = b"ok"
        with pytest.raises(FsError):
            mm[0:2]

    def test_through_interposer(self):
        posix = Interposer(device_size=64 << 20)
        fd = posix.open("mapped", posix.O_CREAT | posix.O_ATOMIC)
        mm = posix.mmap(fd)
        mm[0:9] = b"memmapped"
        assert posix.pread(fd, 9, 0) == b"memmapped"
