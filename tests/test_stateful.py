"""Hypothesis stateful machines: MGSP file + the database engine."""

from __future__ import annotations

from hypothesis import HealthCheck, settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.core import MgspConfig, MgspFilesystem
from repro.core.verify import verify_file
from repro.db import Database
from repro.fs import Ext4Dax

CAP = 256 * 1024


class MgspFileMachine(RuleBasedStateMachine):
    """Arbitrary interleavings of writes/reads/txns vs a flat model."""

    @initialize()
    def setup(self):
        self.fs = MgspFilesystem(device_size=64 << 20, config=MgspConfig(degree=16))
        self.handle = self.fs.create("m", capacity=CAP)
        self.model = bytearray(CAP)
        self.size = 0
        self.ops = 0

    @rule(off=st.integers(0, CAP - 1), length=st.integers(1, 30_000), fill=st.integers(1, 255))
    def write(self, off, length, fill):
        length = min(length, CAP - off)
        payload = bytes([fill]) * length
        self.handle.write(off, payload)
        self.model[off : off + length] = payload
        self.size = max(self.size, off + length)
        self.ops += 1

    @rule(off=st.integers(0, CAP - 1), length=st.integers(0, 10_000))
    def read_matches_model(self, off, length):
        expected = bytes(self.model[off : min(off + length, self.size)]) if off < self.size else b""
        assert self.handle.read(off, length) == expected

    @rule(
        pairs=st.lists(
            st.tuples(st.integers(0, CAP - 4096), st.integers(1, 4000), st.integers(1, 255)),
            min_size=1,
            max_size=4,
        ),
        commit=st.booleans(),
    )
    def transaction(self, pairs, commit):
        txn = self.fs.begin_transaction(self.handle)
        staged = bytearray(self.model)
        staged_size = self.size
        for off, length, fill in pairs:
            payload = bytes([fill]) * length
            txn.write(off, payload)
            staged[off : off + length] = payload
            staged_size = max(staged_size, off + length)
        if commit:
            txn.commit()
            self.model = staged
            self.size = staged_size
        else:
            txn.rollback()
        self.ops += 1

    @rule()
    def close_reopen(self):
        self.handle.close()
        self.handle = self.fs.open("m")

    @precondition(lambda self: self.ops and self.ops % 5 == 0)
    @invariant()
    def structure_verifies(self):
        report = verify_file(self.handle)
        assert report.ok, report.errors

    @invariant()
    def size_matches(self):
        assert self.handle.size == self.size


TestMgspFileMachine = MgspFileMachine.TestCase
TestMgspFileMachine.settings = settings(
    max_examples=15,
    stateful_step_count=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class DatabaseMachine(RuleBasedStateMachine):
    """Random table mutations vs a dict model, across reopen."""

    @initialize(journal=st.sampled_from(["wal", "off"]))
    def setup(self, journal):
        self.fs = Ext4Dax(device_size=96 << 20)
        self.journal = journal
        self.db = Database(self.fs, journal_mode=journal)
        self.table = self.db.create_table("t")
        self.model = {}

    @rule(key=st.integers(0, 300), value=st.text(max_size=40))
    def upsert(self, key, value):
        self.table.insert((key,), (value,))
        self.model[key] = value

    @rule(key=st.integers(0, 300))
    def delete(self, key):
        existed = self.table.delete((key,))
        assert existed == (key in self.model)
        self.model.pop(key, None)

    @rule(key=st.integers(0, 300))
    def get(self, key):
        row = self.table.get((key,))
        if key in self.model:
            assert row == (self.model[key],)
        else:
            assert row is None

    @rule(
        items=st.lists(st.tuples(st.integers(0, 300), st.text(max_size=20)), min_size=1, max_size=5),
        commit=st.booleans(),
    )
    def txn(self, items, commit):
        self.db.begin()
        for key, value in items:
            self.table.insert((key,), (value,))
        if commit:
            self.db.commit()
            for key, value in items:
                self.model[key] = value
        else:
            self.db.rollback()

    @rule()
    def reopen(self):
        self.db.close()
        self.db = Database(self.fs, journal_mode=self.journal)
        self.table = self.db.table("t")

    @invariant()
    def count_matches(self):
        assert self.table.count() == len(self.model)


TestDatabaseMachine = DatabaseMachine.TestCase
TestDatabaseMachine.settings = settings(
    max_examples=10,
    stateful_step_count=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
