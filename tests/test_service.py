"""Unit tests for the multi-tenant service layer (PR 8 tentpole)."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.nvm.timing import TimingModel
from repro.obs import MetricsRegistry
from repro.service import (
    DeficitRoundRobin,
    MgspService,
    Request,
    ServiceConfig,
    ShardMap,
    TenantQuota,
    TokenBucket,
    run_service_workload,
)
from repro.service.__main__ import main as service_cli
from repro.sim.engine import ReplayEngine
from repro.sim.trace import OpTrace


# -- sharding ----------------------------------------------------------------


class TestShardMap:
    def test_deterministic_and_stable(self):
        m = ShardMap(4)
        names = [f"t{i:04d}" for i in range(64)]
        first = [m.shard_for(n) for n in names]
        assert first == [m.shard_for(n) for n in names]  # pure function
        assert all(0 <= s < 4 for s in first)

    def test_spreads_tenants(self):
        m = ShardMap(4)
        shards = {m.shard_for(f"t{i:04d}") for i in range(64)}
        assert shards == {0, 1, 2, 3}

    def test_single_shard(self):
        assert ShardMap(1).shard_for("anything") == 0

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            ShardMap(0)


# -- admission ---------------------------------------------------------------


class TestTokenBucket:
    def test_burst_then_reject(self):
        bucket = TokenBucket(TenantQuota(ops_per_sec=1.0, burst=3))
        assert all(bucket.admit(0.0) for _ in range(3))
        assert not bucket.admit(0.0)
        assert bucket.admitted == 3 and bucket.rejected == 1

    def test_refills_on_virtual_clock(self):
        # 1 op/s = 1 token per 1e9 virtual ns.
        bucket = TokenBucket(TenantQuota(ops_per_sec=1.0, burst=1))
        assert bucket.admit(0.0)
        assert not bucket.admit(1e8)  # 0.1 tokens
        assert bucket.admit(1.2e9)  # refilled past 1
        assert not bucket.admit(1.2e9)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(TenantQuota(ops_per_sec=1e9, burst=2))
        assert [bucket.admit(1e12) for _ in range(3)] == [True, True, False]

    def test_invalid_quota(self):
        with pytest.raises(ValueError):
            TenantQuota(ops_per_sec=0.0)
        with pytest.raises(ValueError):
            TenantQuota(burst=0)


# -- fair scheduling ---------------------------------------------------------


class TestDeficitRoundRobin:
    def test_fifo_within_tenant(self):
        drr = DeficitRoundRobin(quantum=1 << 20)
        for i in range(4):
            drr.enqueue("a", i, 100)
        assert [item for _, item in drr.drain()] == [0, 1, 2, 3]

    def test_round_robin_across_tenants(self):
        drr = DeficitRoundRobin(quantum=100)
        for i in range(2):
            drr.enqueue("a", f"a{i}", 100)
            drr.enqueue("b", f"b{i}", 100)
        assert list(drr.drain()) == [
            ("a", "a0"), ("b", "b0"), ("a", "a1"), ("b", "b1"),
        ]

    def test_byte_fairness_large_vs_small(self):
        """An elephant (4 KiB requests) cannot starve a mouse (512 B):
        per round the mouse dispatches ~8x more requests, equal bytes."""
        drr = DeficitRoundRobin(quantum=4096)
        for i in range(8):
            drr.enqueue("elephant", ("e", i), 4096)
        for i in range(64):
            drr.enqueue("mouse", ("m", i), 512)
        order = list(drr.drain())
        # After the first elephant dispatch, a full mouse quantum follows
        # before the next elephant one.
        first_e = order.index(("elephant", ("e", 0)))
        second_e = order.index(("elephant", ("e", 1)))
        mice_between = sum(
            1 for t, _ in order[first_e + 1 : second_e] if t == "mouse"
        )
        assert mice_between == 8

    def test_deficit_carries_over_for_oversized_requests(self):
        """A request larger than one quantum waits, banks deficit, and
        dispatches once enough rounds accumulate — it is never dropped."""
        drr = DeficitRoundRobin(quantum=100)
        drr.enqueue("big", "x", 250)
        drr.enqueue("small", "y", 10)
        order = list(drr.drain())
        assert ("big", "x") in order and ("small", "y") in order
        assert order[0] == ("small", "y")  # big waits for round 3

    def test_idle_tenant_banks_no_credit(self):
        drr = DeficitRoundRobin(quantum=100)
        drr.enqueue("a", 1, 100)
        assert list(drr.drain()) == [("a", 1)]
        assert drr._deficit == {}  # no residual credit

    def test_rejects_bad_quantum(self):
        with pytest.raises(ValueError):
            DeficitRoundRobin(quantum=0)


# -- engine arrival scheduling (the sim/engine extension) --------------------


def _trace(*segments):
    return OpTrace(name="t", segments=list(segments))


class TestEngineStartTimes:
    def test_arrival_delays_thread(self):
        engine = ReplayEngine(TimingModel(channels=4, lock_ns=0.0))
        streams = [[_trace(("compute", 10.0))], [_trace(("compute", 10.0))]]
        result = engine.run(streams, start_times=[0.0, 1000.0])
        assert result.threads[0].finish_ns == 10.0
        assert result.threads[1].finish_ns == 1010.0
        assert result.makespan_ns == 1010.0

    def test_default_matches_all_zero(self):
        engine = ReplayEngine(TimingModel(channels=1, lock_ns=0.0))
        streams = [
            [_trace(("io", 5.0), ("compute", 3.0))],
            [_trace(("io", 7.0))],
        ]
        base = engine.run(streams)
        explicit = engine.run(streams, start_times=[0.0, 0.0])
        assert [t.finish_ns for t in base.threads] == [
            t.finish_ns for t in explicit.threads
        ]
        assert base.makespan_ns == explicit.makespan_ns

    def test_late_arrival_skips_contention(self):
        """A thread arriving after the channel burst is over sees no
        queueing delay; at t=0 it would have."""
        engine = ReplayEngine(TimingModel(channels=1, lock_ns=0.0))
        streams = [[_trace(("io", 100.0))], [_trace(("io", 10.0))]]
        contended = engine.run(streams)
        staggered = engine.run(streams, start_times=[0.0, 500.0])
        assert contended.threads[1].lock_wait_ns == 100.0
        assert staggered.threads[1].lock_wait_ns == 0.0
        assert staggered.threads[1].finish_ns == 510.0

    def test_empty_stream_finishes_on_arrival(self):
        engine = ReplayEngine(TimingModel(channels=1, lock_ns=0.0))
        result = engine.run([[], [_trace(("compute", 1.0))]], start_times=[50.0, 0.0])
        assert result.threads[0].finish_ns == 50.0

    def test_length_mismatch_raises(self):
        engine = ReplayEngine(TimingModel(channels=1, lock_ns=0.0))
        with pytest.raises(SimulationError):
            engine.run([[_trace(("compute", 1.0))]], start_times=[0.0, 0.0])


# -- end-to-end service ------------------------------------------------------


class TestServiceWorkload:
    def test_small_run_invariants(self):
        registry = MetricsRegistry()
        report = run_service_workload(
            ServiceConfig(shards=2, device_size=16 << 20, file_capacity=8 << 10),
            tenants=8,
            ops_per_tenant=4,
            bs=1024,
            seed=7,
            registry=registry,
        )
        assert report.tenants == 8 and report.shards == 2
        assert report.admitted == 32 and report.rejected == 0
        assert report.total_bytes == 32 * 1024
        assert report.makespan_ns > 0 and report.throughput_mb_s > 0
        assert 0 < report.p50_ns <= report.p99_ns
        assert len(report.per_shard) == 2
        assert sum(s.tenants for s in report.per_shard) == 8
        for shard in report.per_shard:
            assert 0.0 <= shard.utilization <= 1.0
        # Per-tenant reports are complete and consistent.
        assert len(report.per_tenant) == 8
        for tr in report.per_tenant:
            assert tr.admitted == 4 and tr.rejected == 0
            assert tr.bytes_written == 4 * 1024
        # Metrics landed in the shared registry.
        snap = registry.snapshot()
        assert any("service_latency_ns" in k for k in snap["histograms"])
        assert any("service_shard_utilization" in k for k in snap["gauges"])

    def test_tight_quota_rejects(self):
        config = ServiceConfig(
            shards=1,
            device_size=16 << 20,
            file_capacity=8 << 10,
            quota=TenantQuota(ops_per_sec=1.0, burst=2),
        )
        report = run_service_workload(config, tenants=4, ops_per_tenant=8, seed=7)
        assert report.rejected == 4 * 6  # burst=2 of 8 per tenant admitted
        assert report.admitted == 4 * 2
        for tr in report.per_tenant:
            assert tr.admitted == 2 and tr.rejected == 6

    def test_deterministic_reports(self):
        def run():
            r = run_service_workload(
                ServiceConfig(shards=2, device_size=16 << 20, file_capacity=8 << 10),
                tenants=6,
                ops_per_tenant=3,
                seed=11,
            )
            return (
                r.makespan_ns,
                r.p50_ns,
                r.p99_ns,
                [(t.tenant, t.p50_ns, t.p99_ns) for t in r.per_tenant],
                [(s.makespan_ns, s.lock_wait_ns) for s in r.per_shard],
            )

        assert run() == run()

    def test_tenants_land_on_hashed_shard(self):
        service = MgspService(ServiceConfig(shards=4, device_size=16 << 20))
        m = ShardMap(4)
        for i in range(8):
            name = f"t{i:04d}"
            session = service.register(name)
            assert session.shard == m.shard_for(name)
            # The backing file exists only on that shard.
            for shard, fs in enumerate(service.shards):
                assert fs.volume.exists(name) == (shard == session.shard)

    def test_duplicate_and_oversized_tenant_rejected(self):
        service = MgspService(ServiceConfig(shards=1, device_size=16 << 20))
        service.register("dup")
        with pytest.raises(ValueError):
            service.register("dup")
        with pytest.raises(ValueError):
            service.register("x" * 17)

    def test_submit_counts_shard_rejects(self):
        service = MgspService(
            ServiceConfig(
                shards=1,
                device_size=16 << 20,
                quota=TenantQuota(ops_per_sec=1.0, burst=1),
            )
        )
        service.register("t0000")
        req = Request(kind="write", offset=0, nbytes=512, arrival_ns=0.0)
        assert service.submit("t0000", req)
        assert not service.submit("t0000", req)
        counter = service.registry.counter(
            "service_admission_rejects_total", shard="0"
        )
        assert counter.value == 1


# -- CLI ---------------------------------------------------------------------


class TestCli:
    def test_single_run(self, capsys):
        assert service_cli(["--tenants", "4", "--shards", "2", "--ops", "2"]) == 0
        out = capsys.readouterr().out
        assert "4 tenants x 2 shard(s)" in out
        assert "admitted" in out

    def test_sweep_writes_json(self, tmp_path, capsys):
        out_path = tmp_path / "bench.json"
        rc = service_cli(
            [
                "--sweep",
                "--tenant-counts", "4,8",
                "--shard-counts", "1,2",
                "--ops", "2",
                "--out", str(out_path),
            ]
        )
        assert rc == 0
        import json

        payload = json.loads(out_path.read_text())
        assert payload["benchmark"] == "service-scalability"
        assert len(payload["rows"]) == 4
