"""Property tests for the invariant miner (ISSUE 6 satellite).

Synthetic :class:`PersistEvent` streams with *planted* invariants and
violations: the miner must rediscover exactly what was planted, never
report a violated pattern as support-clean ("no false confirmed"), and
be a pure function of its input (byte-determinism of the CLI report
rests on this).
"""

from __future__ import annotations

import random

import pytest

from repro.infer.events import FENCE, FLUSH, STORE, PersistEvent, Trace
from repro.infer.miner import (
    FENCED_BY_OP_END,
    NEVER_TORN,
    PERSIST_BEFORE,
    mine,
    words_of,
)

A, B, C = 0x1000, 0x8000, 0x20000  # one address block per region


class Stream:
    """Builder for synthetic traces with collector-identical indexing."""

    def __init__(self):
        self.events = []
        self.index = 0
        self.op = None
        self.op_seq = -1

    def begin(self, name="op"):
        self.op_seq += 1
        self.op = name
        return self

    def end(self):
        self.op = None
        return self

    def store(self, offset, length, region, kind="store"):
        self.events.append(
            PersistEvent(
                self.index, STORE, offset, length, kind, region, self.op, self.op_seq
            )
        )
        self.index += 1
        return self

    def flush(self, offset, length, region=""):
        self.events.append(
            PersistEvent(
                self.index, FLUSH, offset, length, "", region, self.op, self.op_seq
            )
        )
        self.index += 1
        return self

    def fence(self):
        self.events.append(
            PersistEvent(self.index, FENCE, 0, 0, "", "", self.op, self.op_seq)
        )
        self.index += 1
        return self

    def trace(self):
        return Trace("synthetic", "sync", list(self.events), self.op_seq + 1, False)


def by_key(candidates):
    return {c.key: c for c in candidates}


def committed_op(s, n=1, base_a=A, base_b=B):
    """n ops with the planted discipline: data (a) persisted, fence,
    then commit (b) — persist-before(a -> b) at durability=durable."""
    for i in range(n):
        s.begin("put")
        s.store(base_a + 64 * i, 8, "data", kind="nt")
        s.fence()
        s.store(base_b + 8 * i, 8, "commit", kind="atomic")
        s.flush(base_b + 8 * i, 8, "commit")
        s.fence()
        s.end()


class TestPlantedInvariants:
    def test_persist_before_rediscovered_durable(self):
        s = Stream()
        committed_op(s, n=6)
        c = by_key(mine([s.trace()]))[(PERSIST_BEFORE, "data", "commit")]
        assert c.support == 6
        assert c.violations == 0
        assert c.durability == "durable"  # the fence enforces the order

    def test_reverse_direction_is_refuted_per_op(self):
        s = Stream()
        committed_op(s, n=6)
        r = by_key(mine([s.trace()]))[(PERSIST_BEFORE, "commit", "data")]
        assert r.violations == 6
        assert r.mined_status(min_support=1) == "violated-in-trace"

    def test_unfenced_order_mined_as_dirty(self):
        """Stores ordered in the trace but with no fence between them:
        the candidate survives, but at durability=dirty — the falsifier's
        cue that a crash image can reorder them."""
        s = Stream()
        for i in range(4):
            s.begin("put")
            s.store(A + 64 * i, 8, "data")  # cached, never flushed
            s.store(B + 8 * i, 8, "commit", kind="nt")
            s.fence()
            s.end()
        c = by_key(mine([s.trace()]))[(PERSIST_BEFORE, "data", "commit")]
        assert c.violations == 0
        assert c.durability == "dirty"
        # the mid-op fence made commit durable while data stayed dirty:
        # the witness must carry that post-fence kill point
        assert c.witness["post_fence_index"] is not None
        assert c.witness["a_live_post_fence"] == words_of(A, 8)

    def test_fenced_by_op_end_support_and_violation(self):
        s = Stream()
        committed_op(s, n=3)  # every word durable at op return
        s.begin("leak").store(C, 8, "meta").end()  # dirty at op return
        got = by_key(mine([s.trace()]))
        clean = got[(FENCED_BY_OP_END, "data", "")]
        assert clean.support == 3 and clean.violations == 0
        leaky = got[(FENCED_BY_OP_END, "meta", "")]
        assert leaky.violations == 1
        # end_index = index right after the op's last event
        assert leaky.violation_witness["end_index"] == s.events[-1].index + 1
        assert leaky.violation_witness["level"] == "dirty"

    def test_never_torn_three_levels(self):
        s = Stream()
        s.begin("op")
        s.store(A, 8, "narrow", kind="atomic")  # single word: durable
        s.store(B, 32, "wide_nt", kind="nt")  # tear window until fence
        s.store(C, 32, "wide_plain")  # tearable any time
        s.fence()
        s.end()
        got = by_key(mine([s.trace()]))
        assert got[(NEVER_TORN, "narrow", "")].durability == "durable"
        assert got[(NEVER_TORN, "narrow", "")].violations == 0
        pend = got[(NEVER_TORN, "wide_nt", "")]
        assert pend.violations == 0 and pend.durability == "pending"
        assert pend.witness["words"] == words_of(B, 32)
        torn = got[(NEVER_TORN, "wide_plain", "")]
        assert torn.violations == 1
        assert torn.violation_witness["store_kind"] == "store"


class TestPlantedViolations:
    def test_one_misordered_op_kills_the_candidate(self):
        """5 clean ops + 1 op storing commit first: persist-before(data
        -> commit) must be violated-in-trace, never active."""
        s = Stream()
        committed_op(s, n=5)
        s.begin("put")
        s.store(B + 0x100, 8, "commit", kind="atomic")
        s.flush(B + 0x100, 8, "commit")
        s.fence()
        s.store(A + 0x100, 8, "data", kind="nt")
        s.fence()
        s.end()
        c = by_key(mine([s.trace()]))[(PERSIST_BEFORE, "data", "commit")]
        assert c.support == 5 and c.violations == 1
        assert c.mined_status(min_support=1) == "violated-in-trace"

    def test_variant_run_violation_propagates(self):
        """A pattern that holds in the canonical run but breaks in a
        variant run must not survive the merge."""
        clean, dirty = Stream(), Stream()
        committed_op(clean, n=4)
        committed_op(dirty, n=2)
        dirty.begin("put")
        dirty.store(B + 0x200, 8, "commit", kind="atomic")
        dirty.fence()
        dirty.store(A + 0x200, 8, "data", kind="nt")
        dirty.fence()
        dirty.end()
        c = by_key(mine([clean.trace(), dirty.trace()]))[
            (PERSIST_BEFORE, "data", "commit")
        ]
        assert c.violations == 1
        assert c.mined_status(min_support=1) == "violated-in-trace"

    def test_pattern_absent_from_one_run_is_below_support(self):
        """Cross-run intersection: presence in every run is required, so
        a seed-specific pattern can never reach falsification."""
        with_pair, without = Stream(), Stream()
        committed_op(with_pair, n=8)
        without.begin("noop").store(C, 8, "meta", kind="nt").fence().end()
        c = by_key(mine([with_pair.trace(), without.trace()]))[
            (PERSIST_BEFORE, "data", "commit")
        ]
        assert c.runs_present == 1 and c.runs_total == 2
        assert c.mined_status(min_support=1) == "below-support"

    def test_min_support_threshold(self):
        s = Stream()
        committed_op(s, n=3)
        c = by_key(mine([s.trace()]))[(PERSIST_BEFORE, "data", "commit")]
        assert c.mined_status(min_support=5) == "below-support"
        assert c.mined_status(min_support=3) == "active"


class TestScopeRules:
    def test_stores_outside_ops_are_ignored(self):
        s = Stream()
        s.store(A, 32, "data")  # op=None: setup-style raw store
        s.fence()
        assert mine([s.trace()]) == []

    def test_unmapped_regions_are_skipped(self):
        s = Stream()
        s.begin("op").store(A, 32, "unmapped").fence().end()
        assert mine([s.trace()]) == []

    def test_flush_makes_dirty_pending_not_durable(self):
        """flush without fence must not count as persisted: the pair is
        pending, not durable."""
        s = Stream()
        s.begin("put")
        s.store(A, 8, "data")
        s.flush(A, 8, "data")
        s.store(B, 8, "commit", kind="atomic")
        s.fence()
        s.end()
        c = by_key(mine([s.trace()]))[(PERSIST_BEFORE, "data", "commit")]
        assert c.durability == "pending"


class TestFuzz:
    def _random_trace(self, seed):
        rng = random.Random(seed)
        regions = [("data", A), ("commit", B), ("meta", C)]
        s = Stream()
        for _ in range(rng.randrange(3, 12)):
            s.begin(rng.choice(["put", "del", "sync"]))
            for _ in range(rng.randrange(1, 5)):
                name, base = rng.choice(regions)
                off = base + 8 * rng.randrange(64)
                kind = rng.choice(["store", "nt", "atomic"])
                length = rng.choice([8, 8, 16, 32]) if kind != "atomic" else 8
                s.store(off, length, name, kind=kind)
                if rng.random() < 0.5:
                    s.flush(off, length, name)
                if rng.random() < 0.4:
                    s.fence()
            if rng.random() < 0.7:
                s.fence()
            s.end()
        return s.trace()

    @pytest.mark.parametrize("seed", range(8))
    def test_deterministic_and_sorted(self, seed):
        trace = self._random_trace(seed)
        first = mine([trace])
        second = mine([trace])
        assert first == second
        assert [c.key for c in first] == sorted(c.key for c in first)

    @pytest.mark.parametrize("seed", range(8))
    def test_direction_accounting_balances(self, seed):
        """Every persist-before observation supports (A,B) and refutes
        (B,A): the two tallies must balance exactly — a broken balance
        would let a violated direction masquerade as confirmed."""
        got = by_key(mine([self._random_trace(seed)]))
        for (family, a, b), c in got.items():
            if family != PERSIST_BEFORE:
                continue
            assert c.support == got[(PERSIST_BEFORE, b, a)].violations

    @pytest.mark.parametrize("seed", range(8))
    def test_no_false_confirmables(self, seed):
        """Any plain store wider than 8B must leave its region's
        never-torn candidate violated — no fuzz stream may launder a
        tearable store into an active tear-freedom claim."""
        trace = self._random_trace(seed)
        wide_plain = {
            e.region
            for e in trace.events
            if e.kind == STORE and e.store_kind == "store" and e.length > 8
        }
        got = by_key(mine([trace]))
        for region in wide_plain:
            assert got[(NEVER_TORN, region, "")].violations > 0
