"""Radix tree geometry, persistence, growth, remount scanning."""

from __future__ import annotations

import pytest

from repro.core import bitmap
from repro.core.config import MgspConfig
from repro.core.radix import RadixTree, required_table_len, SLOT_SIZE
from repro.errors import FsError
from repro.fsapi.volume import Volume
from repro.nvm.device import NvmDevice


def make_tree(capacity=1 << 20, degree=16, device_size=32 << 20):
    device = NvmDevice(device_size)
    volume = Volume(device)
    config = MgspConfig(degree=degree)
    inode = volume.create("f", capacity, node_table_len=required_table_len(capacity, config))
    return RadixTree(device, inode, config), inode, device


class TestGeometry:
    def test_gran_per_level(self):
        tree, _, _ = make_tree(degree=16)
        assert tree.gran(0) == 4096
        assert tree.gran(1) == 4096 * 16
        assert tree.gran(2) == 4096 * 256

    def test_level_counts_cover_capacity(self):
        tree, inode, _ = make_tree(capacity=1 << 20, degree=16)
        assert tree.leaf_count == (1 << 20) // 4096
        assert tree.level_counts[0] == tree.leaf_count
        assert tree.level_counts[-1] == 1

    def test_required_table_len_enough(self):
        config = MgspConfig(degree=16)
        total = sum
        needed = required_table_len(1 << 20, config)
        # One slot per node on every level, 16 bytes each.
        assert needed >= (256 + 16 + 1 + 1) * SLOT_SIZE

    def test_node_start_and_size(self):
        tree, _, _ = make_tree(degree=16)
        node = tree.node(1, 3)
        assert node.size == 4096 * 16
        assert node.start == 3 * node.size

    def test_node_out_of_range(self):
        tree, _, _ = make_tree(degree=16)
        with pytest.raises(FsError):
            tree.node(0, 10**9)
        with pytest.raises(FsError):
            tree.node(99, 0)

    def test_child_range(self):
        tree, _, _ = make_tree(degree=16)
        parent = tree.node(1, 0)
        first, last = tree.child_range(parent, 0, 4096)
        assert (first, last) == (0, 0)
        first, last = tree.child_range(parent, 4096, 8192)
        assert (first, last) == (1, 2)

    def test_parent_of(self):
        tree, _, _ = make_tree(degree=16)
        child = tree.node(0, 35)
        assert tree.parent_of(child).index == 2

    def test_peek_does_not_materialize(self):
        tree, _, _ = make_tree()
        assert tree.peek(0, 5) is None
        tree.node(0, 5)
        assert tree.peek(0, 5) is not None

    def test_slots_unique(self):
        tree, _, _ = make_tree(capacity=1 << 20, degree=16)
        seen = set()
        for level, count in enumerate(tree.level_counts):
            for index in range(count):
                off = tree.slot_offset(level, index)
                assert off not in seen
                seen.add(off)


class TestHeight:
    def test_initial_height_covers_size(self):
        tree, inode, _ = make_tree(capacity=1 << 20, degree=16)
        assert tree.covered() >= inode.size
        assert tree.height >= 1

    def test_grow_to(self):
        tree, _, _ = make_tree(capacity=1 << 20, degree=4)
        h0 = tree.height
        tree.grow_to(1 << 20)
        assert tree.covered() >= 1 << 20
        assert tree.height > h0

    def test_grow_beyond_capacity_rejected(self):
        tree, _, _ = make_tree(capacity=64 << 10, degree=4)
        with pytest.raises(FsError):
            tree.grow_to(1 << 30)

    def test_grow_preserves_existing_freshness(self):
        tree, _, device = make_tree(capacity=1 << 20, degree=4)
        old_root = tree.root
        tree.store_word(old_root, bitmap.pack_nonleaf(False, True, 0, 1))
        device.fence()
        changed = tree.grow_to(tree.covered() + 1)
        new_root = tree.root
        assert new_root.level == old_root.level + 1
        eff = bitmap.effective_nonleaf(new_root.word, 0)
        assert eff.existing  # fresh descendants remain reachable
        assert changed and changed[0] is new_root


class TestGenerations:
    def test_monotone(self):
        tree, _, _ = make_tree()
        a, b = tree.next_gen(), tree.next_gen()
        assert b == a + 1

    def test_exhaustion_raises(self):
        tree, _, _ = make_tree()
        tree.gen = bitmap.GEN_MASK
        with pytest.raises(FsError):
            tree.next_gen()


class TestPersistence:
    def test_store_word_roundtrip(self):
        tree, _, device = make_tree()
        node = tree.node(0, 7)
        word = bitmap.pack_leaf(0xABCD, 3)
        tree.store_word(node, word)
        device.fence()
        assert device.buffer.load_u64(node.slot_off) == word
        assert node.word == word

    def test_store_log_ptr_roundtrip(self):
        tree, _, device = make_tree()
        node = tree.node(1, 2)
        tree.store_log_ptr(node, 0x10000)
        device.fence()
        assert device.buffer.load_u64(node.slot_off + 8) == 0x10000

    def test_load_from_table_rebuilds(self):
        tree, inode, device = make_tree()
        leaf = tree.node(0, 3)
        mid = tree.node(1, 0)
        tree.store_word(leaf, bitmap.pack_leaf(0xF, 5))
        tree.store_log_ptr(leaf, 0x20000)
        tree.store_word(mid, bitmap.pack_nonleaf(True, True, 4, 5))
        device.fence()
        device.drain()

        fresh = RadixTree(device, inode, tree.config)
        fresh.load_from_table()
        assert fresh.peek(0, 3).word == bitmap.pack_leaf(0xF, 5)
        assert fresh.peek(0, 3).log_off == 0x20000
        assert fresh.peek(1, 0).word == bitmap.pack_nonleaf(True, True, 4, 5)
        assert fresh.gen == 5  # max gen observed

    def test_clear_table_zeroes(self):
        tree, inode, device = make_tree()
        node = tree.node(0, 1)
        tree.store_word(node, bitmap.pack_leaf(1, 1))
        tree.store_log_ptr(node, 0x3000)
        tree.clear_table()
        fresh = RadixTree(device, inode, tree.config)
        fresh.load_from_table()
        assert fresh.nodes == {}
        assert fresh.gen == 0
