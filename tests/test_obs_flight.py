"""Flight recorder: determinism gate, ring semantics, tap fan-out.

The load-bearing property is **non-perturbation**: attaching the
recorder (and telemetry) to a workload must leave crash images,
``DeviceStats``, and sweep verdicts byte-identical to a bare run —
the flight recorder is always-on-capable precisely because turning it
on changes nothing observable.
"""

from __future__ import annotations

import pytest

from repro.crashsweep.workloads import get_workload
from repro.nvm.crash import CrashPlan, count_events
from repro.nvm.device import NvmDevice, TapFanout, add_tap, remove_tap
from repro.obs.flight import (
    NULL_FLIGHT,
    FlightRecorder,
    NullFlightRecorder,
    attach_flight,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import attach_telemetry


def _run(workload_name, config, crash_after=None, flight_capacity=None):
    workload = get_workload(workload_name)
    holder = {}

    def instrument(system):
        holder["telemetry"] = attach_telemetry(system, registry=MetricsRegistry())
        holder["flight"] = attach_flight(system, capacity=flight_capacity)

    plan = CrashPlan(crash_after) if crash_after is not None else None
    outcome = workload.run(
        config, plan, instrument=instrument if flight_capacity is not None else None
    )
    return outcome, holder.get("flight")


class _CountingTap:
    def __init__(self):
        self.calls = []

    def on_store(self, offset, length, kind):
        self.calls.append(("store", offset, length, kind))

    def on_flush(self, offset, length, nlines):
        self.calls.append(("flush", offset, length, nlines))

    def on_fence(self):
        self.calls.append(("fence",))

    def on_drain(self):
        self.calls.append(("drain",))


def test_null_flight_is_inert():
    assert NULL_FLIGHT.enabled is False
    assert isinstance(NULL_FLIGHT, NullFlightRecorder)
    NULL_FLIGHT.mark("x")
    NULL_FLIGHT.on_fence()
    assert NULL_FLIGHT.events_list() == []
    assert NULL_FLIGHT.snapshot()["events"] == []


def test_tap_fanout_add_remove():
    device = NvmDevice(1 << 20)
    a, b = _CountingTap(), _CountingTap()
    add_tap(device, a)
    assert device.analysis_tap is a  # single tap stays bare
    add_tap(device, b)
    assert isinstance(device.analysis_tap, TapFanout)
    device.store(0, b"\xaa" * 8)
    assert a.calls and a.calls == b.calls
    remove_tap(device, b)
    assert device.analysis_tap is a  # collapses back to the bare slot
    device.fence()
    assert a.calls[-1] == ("fence",) and ("fence",) not in b.calls
    remove_tap(device, a)
    assert device.analysis_tap is None


def test_flight_attach_is_non_perturbing():
    """Images, stats, and verdicts identical with and without the recorder."""
    bare, _ = _run("fio-randwrite", "sync", crash_after=700)
    wired, flight = _run("fio-randwrite", "sync", crash_after=700, flight_capacity=128)
    assert flight.recorded > 0
    assert vars(bare.fs.device.stats) == vars(wired.fs.device.stats)
    kept = sorted(bare.fs.device.unfenced_words())
    assert kept == sorted(wired.fs.device.unfenced_words())
    assert bytes(bare.fs.device.crash_image(persist_words=kept)) == bytes(
        wired.fs.device.crash_image(persist_words=kept)
    )
    assert bare.crashed and wired.crashed


def test_event_index_parity_with_crashsweep():
    """Ring indices are crash indices: the recorder counts exactly the
    events the sweep enumerates (census baseline = post-setup drain)."""
    outcome, flight = _run("fio-randwrite", "sync", flight_capacity=64)
    assert flight.event_index == count_events(
        outcome.fs.device, since=outcome.stats_base
    )
    # the bounded ring keeps the tail; indices in it are replayable --at Ns
    tail = [e for e in flight.events_list() if e[0] in ("store", "flush", "fence")]
    indices = [e[1] for e in tail if e[0] in ("store", "flush")]
    assert indices == sorted(indices)
    assert indices[-1] < flight.event_index


def test_bounded_ring_drops_head():
    flight = FlightRecorder(capacity=4)
    for i in range(10):
        flight.mark(f"m{i}")
    snap = flight.snapshot()
    assert snap["capacity"] == 4
    assert len(snap["events"]) == 4
    assert snap["recorded"] == 10
    assert snap["dropped"] == 6
    assert snap["events"][-1][2] == "m9"


def test_unbounded_ring_keeps_everything():
    flight = FlightRecorder(capacity=0)
    for i in range(100):
        flight.mark(str(i))
    assert flight.dropped == 0
    assert len(flight.events_list()) == 100


def test_held_locks_and_span_stack():
    flight = FlightRecorder(capacity=0)
    flight.on_lock("inode:3", "X")
    flight.on_span_open("op.write", 0.0)
    flight.on_store(4096, 64, "store")
    assert flight.held_locks_snapshot() == [["inode:3", "X"]]
    store = [e for e in flight.events_list() if e[0] == "store"][0]
    assert store[7] == ("op.write",)  # open spans ride on the event
    flight.on_unlock("inode:3")
    assert flight.held_locks_snapshot() == []


def test_drain_resets_ring_and_index():
    flight = FlightRecorder(capacity=8)
    flight.on_store(0, 8, "store")
    flight.on_fence()
    assert flight.event_index > 0
    flight.on_drain()
    assert flight.event_index == 0
    assert flight.events_list() == []


@pytest.mark.parametrize("config", ["sync", "async"])
def test_snapshot_deterministic(config):
    _, one = _run("txn-mixed", config, flight_capacity=64)
    _, two = _run("txn-mixed", config, flight_capacity=64)
    assert one.snapshot() == two.snapshot()
