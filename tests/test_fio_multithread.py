"""Multi-thread FIO replay properties + MGSP sharing semantics."""

from __future__ import annotations

import pytest

from repro.bench.registry import make_fs
from repro.core import MgspConfig, MgspFilesystem
from repro.errors import FileBusy
from repro.workloads.fio import FioJob, run_fio


def run(fs_name, threads, bs=4096, op="write", nops_per_thread=80, **job_kw):
    fs = make_fs(fs_name, device_size=64 << 20)
    job = FioJob(
        op=op, bs=bs, fsize=8 << 20, fsync=1, threads=threads,
        nops=nops_per_thread * threads, **job_kw,
    )
    return run_fio(fs, job)


class TestReplayProperties:
    def test_deterministic(self):
        a = run("MGSP", threads=4)
        b = run("MGSP", threads=4)
        assert a.elapsed_ns == b.elapsed_ns

    def test_more_threads_never_slower_in_total_work_terms(self):
        """Makespan with N threads doing N x W ops never beats the
        single-thread time for W ops by more than N (no time travel)."""
        single = run("MGSP", threads=1)
        for threads in (2, 4, 8):
            multi = run("MGSP", threads=threads)
            speedup = multi.throughput_mb_s / single.throughput_mb_s
            assert speedup <= threads * 1.05, (threads, speedup)

    def test_file_lock_mostly_serializes(self):
        """With MGL disabled, the file-level lock serializes the locked
        portion of every write; only the out-of-lock work (library entry,
        planning, fsync) overlaps — Amdahl caps 4 threads well below 2x."""
        config = MgspConfig(degree=16, fine_grained_locking=False, greedy_locking=False)
        fs = make_fs("MGSP", device_size=64 << 20, mgsp_config=config)
        job = FioJob(op="write", bs=4096, fsize=8 << 20, fsync=1, threads=4, nops=200)
        result = run_fio(fs, job)
        fs1 = make_fs("MGSP", device_size=64 << 20, mgsp_config=config)
        single = run_fio(fs1, FioJob(op="write", bs=4096, fsize=8 << 20, fsync=1, threads=1, nops=200))
        assert result.throughput_mb_s < 2.0 * single.throughput_mb_s
        assert result.lock_wait_ns > 0

    def test_mgl_beats_file_lock_with_threads(self):
        fine = run("MGSP", threads=8, bs=1024)
        coarse_cfg = MgspConfig(degree=16, fine_grained_locking=False, greedy_locking=False)
        fs = make_fs("MGSP", device_size=64 << 20, mgsp_config=coarse_cfg)
        job = FioJob(op="write", bs=1024, fsize=8 << 20, fsync=1, threads=8, nops=8 * 80)
        coarse = run_fio(fs, job)
        assert fine.throughput_mb_s > 2 * coarse.throughput_mb_s

    def test_lock_wait_reported_under_contention(self):
        result = run("Ext4-DAX", threads=8)
        assert result.lock_wait_ns > 0

    def test_libnvmmio_bg_thread_included(self):
        fs = make_fs("Libnvmmio", device_size=64 << 20)
        fs.bg_pressure = 0.0001  # force background checkpoints
        job = FioJob(op="write", bs=4096, fsize=8 << 20, fsync=0, threads=2, nops=120)
        result = run_fio(fs, job)
        assert result.elapsed_ns > 0

    def test_threads_parameter_reflected_in_result(self):
        result = run("NOVA", threads=4)
        assert result.job.threads == 4
        assert result.ops == 4 * 80


class TestMgspSharing:
    def test_second_open_rejected_while_open(self):
        fs = MgspFilesystem(device_size=64 << 20)
        f = fs.create("shared", capacity=1 << 20)
        with pytest.raises(FileBusy):
            fs.open("shared")
        f.close()
        f2 = fs.open("shared")  # fine after close
        f2.close()

    def test_threads_share_one_handle(self):
        """The supported concurrency model: one handle, many threads."""
        fs = MgspFilesystem(device_size=64 << 20, config=MgspConfig(degree=16))
        f = fs.create("shared", capacity=1 << 20)
        for thread in range(4):
            fs.current_thread = thread
            f.write(thread * 4096, bytes([thread + 1]) * 4096)
        for thread in range(4):
            assert f.read(thread * 4096, 4096) == bytes([thread + 1]) * 4096
        for thread in range(4):
            fs.end_thread(thread)
