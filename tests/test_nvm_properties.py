"""Property-based tests of the persistence semantics themselves.

These pin down the store-buffer model that every crash-consistency
argument in the repository rests on.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nvm.cache import StoreBuffer
from repro.util import CACHE_LINE

SIZE = 1 << 14

ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("store"),
            st.integers(0, SIZE - 64),
            st.binary(min_size=1, max_size=64),
        ),
        st.tuples(st.just("flush"), st.integers(0, SIZE - 64), st.integers(1, 64)),
        st.tuples(st.just("fence")),
        st.tuples(st.just("persist"), st.integers(0, SIZE - 64), st.integers(1, 64)),
    ),
    max_size=40,
)


def apply_ops(buf: StoreBuffer, operations) -> None:
    for op in operations:
        if op[0] == "store":
            buf.store(op[1], op[2])
        elif op[0] == "flush":
            buf.flush(op[1], op[2])
        elif op[0] == "fence":
            buf.fence()
        elif op[0] == "persist":
            buf.persist(op[1], op[2])


@settings(max_examples=60, deadline=None)
@given(ops)
def test_loads_always_see_program_order(operations):
    """The working image equals a flat replay of all stores."""
    buf = StoreBuffer(SIZE)
    model = bytearray(SIZE)
    for op in operations:
        if op[0] == "store":
            buf.store(op[1], op[2])
            model[op[1] : op[1] + len(op[2])] = op[2]
        elif op[0] == "flush":
            buf.flush(op[1], op[2])
        elif op[0] == "fence":
            buf.fence()
        elif op[0] == "persist":
            buf.persist(op[1], op[2])
    assert buf.load(0, SIZE) == bytes(model)


@settings(max_examples=60, deadline=None)
@given(ops, st.integers(0, 2**31))
def test_crash_image_between_durable_and_working(operations, seed):
    """Every crash image I satisfies durable <= I <= working, word-wise:
    each 8-byte word of I equals either the durable or working copy."""
    buf = StoreBuffer(SIZE)
    apply_ops(buf, operations)
    image = buf.crash_image(rng=random.Random(seed))
    durable = buf.snapshot_durable()
    working = bytes(buf.working)
    for off in range(0, SIZE, 8):
        word = bytes(image[off : off + 8])
        assert word in (durable[off : off + 8], working[off : off + 8]), off


@settings(max_examples=60, deadline=None)
@given(ops)
def test_fence_after_flush_all_makes_everything_durable(operations):
    buf = StoreBuffer(SIZE)
    apply_ops(buf, operations)
    buf.flush(0, SIZE)
    buf.fence()
    assert buf.snapshot_durable() == bytes(buf.working)
    assert buf.unfenced_words() == []


@settings(max_examples=60, deadline=None)
@given(ops)
def test_drop_all_image_equals_durable(operations):
    buf = StoreBuffer(SIZE)
    apply_ops(buf, operations)
    assert bytes(buf.crash_image(persist_words=[])) == buf.snapshot_durable()


@settings(max_examples=60, deadline=None)
@given(ops)
def test_keep_all_image_equals_working_on_unfenced_words(operations):
    buf = StoreBuffer(SIZE)
    apply_ops(buf, operations)
    image = buf.crash_image(persist_words=buf.unfenced_words())
    for off in buf.unfenced_words():
        assert bytes(image[off : off + 8]) == bytes(buf.working[off : off + 8])


@settings(max_examples=40, deadline=None)
@given(
    st.integers(0, SIZE - 256),
    st.binary(min_size=1, max_size=200),
    st.integers(0, 2**31),
)
def test_persisted_region_survives_any_crash(offset, data, seed):
    buf = StoreBuffer(SIZE)
    buf.store(offset, data)
    buf.persist(offset, len(data))
    # Scribble elsewhere without persisting.
    buf.store((offset + 4096) % (SIZE - 256), b"junk")
    image = buf.crash_image(rng=random.Random(seed))
    assert bytes(image[offset : offset + len(data)]) == data


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, SIZE // CACHE_LINE - 1), min_size=1, max_size=10))
def test_flush_is_idempotent_per_line(lines):
    buf = StoreBuffer(SIZE)
    for line in lines:
        buf.store(line * CACHE_LINE, b"\xaa" * CACHE_LINE)
    total = 0
    for line in lines:
        total += buf.flush(line * CACHE_LINE, CACHE_LINE)
    assert total == len(set(lines))  # second flush of a line is free
    assert buf.flush(0, SIZE) == 0 or set(lines) != set(range(SIZE // CACHE_LINE))
