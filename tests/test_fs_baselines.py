"""Behaviors specific to each baseline file system."""

from __future__ import annotations

import random

import pytest

from repro.errors import FsError
from repro.fs import Ext4, Ext4Dax, Libnvmmio, Nova
from repro.fs.nova import PAGE
from repro.nvm.device import NvmDevice

CAP = 128 * 1024


class TestExt4Dax:
    def test_unsynced_write_may_be_lost(self):
        fs = Ext4Dax(device_size=64 << 20)
        f = fs.create("x", CAP)
        fs.device.drain()
        f.write(0, b"volatile")
        # Drop everything unfenced: the data was nt_stored but not fenced.
        image = fs.device.crash_image(persist_words=[])
        assert bytes(image[f.inode.base : f.inode.base + 8]) == b"\0" * 8

    def test_fsync_makes_data_durable(self):
        fs = Ext4Dax(device_size=64 << 20)
        f = fs.create("x", CAP)
        fs.device.drain()
        f.write(0, b"durable!")
        f.fsync()
        image = fs.device.crash_image(persist_words=[])
        assert bytes(image[f.inode.base : f.inode.base + 8]) == b"durable!"

    def test_no_data_atomicity(self):
        """A crashed DAX write can be partially durable (the paper's
        'only supports metadata consistency')."""
        fs = Ext4Dax(device_size=64 << 20)
        f = fs.create("x", CAP)
        f.write(0, b"A" * 256)
        f.fsync()
        f.write(0, b"B" * 256)
        image = fs.device.crash_image(persist_words=fs.device.unfenced_words()[:8])
        region = bytes(image[f.inode.base : f.inode.base + 256])
        assert region[:64] == b"B" * 64 and region[128:] == b"A" * 128

    def test_size_update_volatile_until_fsync(self):
        fs = Ext4Dax(device_size=64 << 20)
        f = fs.create("x", CAP)
        fs.device.drain()
        f.write(0, b"x" * 100)
        image = fs.device.crash_image(persist_words=[])
        from repro.fsapi.volume import Volume

        remounted = Volume.mount(NvmDevice.from_image(bytes(image)))
        assert remounted.lookup("x").size == 0

    def test_mmap_view(self):
        fs = Ext4Dax(device_size=64 << 20)
        f = fs.create("x", CAP)
        device, base, cap = f.mmap_view()
        assert cap == f.inode.capacity


class TestExt4PageCache:
    @pytest.mark.parametrize("mode", ["wb", "ordered", "journal"])
    def test_modes_functionally_equivalent(self, mode):
        fs = Ext4(device_size=64 << 20, mode=mode)
        f = fs.create("x", CAP)
        rng = random.Random(1)
        ref = bytearray(CAP)
        for _ in range(60):
            off = rng.randrange(CAP - 1)
            ln = min(rng.choice([10, 4096, 9000]), CAP - off)
            payload = bytes([rng.randrange(1, 256)]) * ln
            f.write(off, payload)
            ref[off : off + ln] = payload
        f.fsync()
        size = max(i for i in range(CAP) if ref[i]) + 1
        assert f.read(0, size) == bytes(ref[:size])

    def test_unknown_mode_rejected(self):
        with pytest.raises(FsError):
            Ext4(device_size=64 << 20, mode="lol")

    def test_unsynced_writes_stay_in_page_cache(self):
        fs = Ext4(device_size=64 << 20, mode="ordered")
        f = fs.create("x", CAP)
        fs.device.drain()
        base_stats = fs.device.stats.snapshot()
        f.write(0, b"x" * 4096)
        # No device traffic at all before fsync (page cache only).
        assert fs.device.stats.delta(base_stats).stored_bytes == 0
        f.fsync()
        assert fs.device.stats.delta(base_stats).stored_bytes >= 4096

    def test_journal_mode_writes_data_twice(self):
        results = {}
        for mode in ("ordered", "journal"):
            fs = Ext4(device_size=64 << 20, mode=mode)
            f = fs.create("x", CAP)
            base = fs.device.stats.snapshot()
            f.write(0, b"x" * 4096)
            f.fsync()
            results[mode] = fs.device.stats.delta(base).stored_bytes
        assert results["journal"] >= results["ordered"] + 4096


class TestNova:
    def test_cow_never_overwrites_in_place(self):
        fs = Nova(device_size=64 << 20)
        f = fs.create("x", CAP)
        f.write(0, b"v1" * 2048)
        first_page = f.page_table[0]
        f.write(0, b"v2" * 2048)
        assert f.page_table[0] != first_page

    def test_sub_page_write_amplifies_to_page(self):
        fs = Nova(device_size=64 << 20)
        f = fs.create("x", CAP)
        f.write(0, b"x" * PAGE)
        base = fs.device.stats.snapshot()
        f.write(100, b"y" * 512)
        delta = fs.device.stats.delta(base)
        assert delta.stored_bytes >= PAGE  # whole CoW page rewritten

    def test_durable_at_op_return(self):
        fs = Nova(device_size=64 << 20)
        f = fs.create("x", CAP)
        fs.device.drain()
        f.write(0, b"atomic!!" * 512)
        image = fs.device.crash_image(persist_words=[])
        remounted = Nova.remount(NvmDevice.from_image(bytes(image)))
        f2 = remounted.open("x")
        assert f2.read(0, 4096) == b"atomic!!" * 512

    def test_remount_preserves_page_table(self):
        fs = Nova(device_size=64 << 20)
        f = fs.create("x", CAP)
        f.write(0, b"hello")
        f.write(8192, b"world")
        fs.device.drain()
        remounted = Nova.remount(NvmDevice.from_image(bytes(fs.device.buffer.snapshot_durable())))
        f2 = remounted.open("x")
        assert f2.read(0, 5) == b"hello"
        assert f2.read(8192, 5) == b"world"

    def test_old_pages_recycled(self):
        fs = Nova(device_size=64 << 20)
        f = fs.create("x", CAP)
        for _ in range(50):
            f.write(0, b"z" * PAGE)
        assert fs.pages.in_use <= CAP + PAGE  # no leak


class TestLibnvmmio:
    def test_redo_log_until_sync(self):
        fs = Libnvmmio(device_size=64 << 20)
        f = fs.create("x", CAP)
        fs.device.drain()
        f.write(0, b"logged")
        # Data sits in the log, not the file, until fsync.
        assert bytes(fs.device.buffer.working[f.inode.base : f.inode.base + 6]) == b"\0" * 6
        assert f.read(0, 6) == b"logged"
        f.fsync()
        assert bytes(fs.device.buffer.working[f.inode.base : f.inode.base + 6]) == b"logged"

    def test_sync_doubles_write_traffic(self):
        fs = Libnvmmio(device_size=64 << 20)
        f = fs.create("x", CAP)
        base = fs.device.stats.snapshot()
        f.write(0, b"x" * 4096)
        f.fsync()
        amp = fs.device.stats.delta(base).stored_bytes / 4096
        assert amp > 1.9

    def test_no_sync_traffic_near_one(self):
        fs = Libnvmmio(device_size=64 << 20)
        f = fs.create("x", CAP)
        base = fs.device.stats.snapshot()
        for i in range(16):
            f.write(i * 4096, b"x" * 4096)
        amp = fs.device.stats.delta(base).stored_bytes / (16 * 4096)
        assert amp < 1.1

    def test_hybrid_switches_to_undo_when_read_dominant(self):
        fs = Libnvmmio(device_size=64 << 20)
        f = fs.create("x", CAP)
        f.write(0, b"seed" * 1024)
        for _ in range(10):
            f.read(0, 4096)
        f.fsync()  # epoch decision: read-dominant -> undo
        assert f.epoch_policy == "undo"
        f.write(0, b"undo" * 1024)
        assert f.read(0, 8) == b"undoundo"
        for _ in range(5):
            f.write(0, b"busy" * 1024)
        f.fsync()  # write-dominant -> back to redo
        assert f.epoch_policy == "redo"

    def test_undo_policy_reads_direct(self):
        fs = Libnvmmio(device_size=64 << 20)
        f = fs.create("x", CAP)
        f.write(0, b"A" * 4096)
        for _ in range(3):
            f.read(0, 64)
        f.fsync()
        assert f.epoch_policy == "undo"
        f.write(100, b"B" * 64)
        assert f.read(100, 64) == b"B" * 64
        assert f.read(0, 100) == b"A" * 100

    def test_background_checkpoint_under_pressure(self):
        fs = Libnvmmio(device_size=64 << 20)
        fs.bg_pressure = 0.0001  # force bg drain quickly
        f = fs.create("x", CAP)
        for i in range(8):
            f.write(i * 4096, b"x" * 4096)
        bg = fs.take_bg_traces()
        assert bg  # background checkpoint ops were recorded
        assert f.read(0, 4096) == b"x" * 4096
