"""The MGSP state verifier (fsck) itself."""

from __future__ import annotations

import random

import pytest

from repro.core import MgspConfig, MgspFilesystem
from repro.core import bitmap
from repro.core.verify import verify_file
from repro.errors import FsError

CAP = 512 * 1024


@pytest.fixture
def handle():
    fs = MgspFilesystem(device_size=64 << 20, config=MgspConfig(degree=16))
    return fs.create("v", capacity=CAP)


class TestCleanStates:
    def test_fresh_file_verifies(self, handle):
        assert verify_file(handle).ok

    def test_after_simple_writes(self, handle):
        handle.write(0, b"a" * 5000)
        handle.write(100_000, b"b" * 123)
        report = verify_file(handle)
        assert report.ok, report.errors
        assert report.valid_logs >= 1
        assert report.fresh_bytes > 0

    def test_after_fuzz_workload(self, handle):
        rng = random.Random(3)
        for _ in range(200):
            off = rng.randrange(0, CAP - 1)
            ln = min(rng.choice([1, 128, 4096, 30_000, 70_000]), CAP - off)
            handle.write(off, bytes([rng.randrange(1, 255)]) * ln)
        report = verify_file(handle)
        assert report.ok, report.errors
        assert report.nodes_checked > 10

    def test_after_close_everything_clean(self, handle):
        handle.write(0, b"x" * 10_000)
        fs = handle.fs
        handle.close()
        reopened = fs.open("v")
        report = verify_file(reopened)
        assert report.ok
        assert report.valid_logs == 0
        assert report.fresh_bytes == 0

    @pytest.mark.parametrize(
        "cfg",
        [
            {},
            {"multi_granularity": False},
            {"fine_grained_logging": False},
            {"shadow_logging": False},
        ],
    )
    def test_all_configs_verify(self, cfg):
        fs = MgspFilesystem(device_size=64 << 20, config=MgspConfig(degree=16, **cfg))
        f = fs.create("v", capacity=CAP)
        rng = random.Random(5)
        for _ in range(80):
            off = rng.randrange(0, CAP - 1)
            ln = min(rng.choice([64, 4096, 20_000]), CAP - off)
            f.write(off, b"q" * ln)
        assert verify_file(f).ok


class TestCorruptionDetection:
    def test_detects_missing_log_block(self, handle):
        handle.write(0, b"x" * 4096)
        leaf = handle.tree.peek(0, 0)
        leaf.log_off = 0  # sever the log pointer behind MGSP's back
        report = verify_file(handle)
        assert not report.ok
        assert any("no log block" in e for e in report.errors)

    def test_detects_cleared_existing_bit(self, handle):
        handle.write(0, b"x" * 4096)
        root = handle.tree.root
        bits = bitmap.unpack_nonleaf(root.word)
        handle.tree.store_word(
            root,
            bitmap.pack_nonleaf(bits.valid, False, bits.sub_gen, bits.own_gen),
        )
        report = verify_file(handle)
        assert not report.ok
        assert any("unreachable" in e for e in report.errors)

    def test_detects_unaligned_log(self, handle):
        handle.write(0, b"x" * 4096)
        leaf = handle.tree.peek(0, 0)
        leaf.log_off += 8
        report = verify_file(handle)
        assert not report.ok

    def test_detects_log_outside_area(self, handle):
        handle.write(0, b"x" * 4096)
        leaf = handle.tree.peek(0, 0)
        leaf.log_off = 4096  # superblock territory
        report = verify_file(handle)
        assert not report.ok

    def test_raise_on_error(self, handle):
        handle.write(0, b"x" * 4096)
        handle.tree.peek(0, 0).log_off = 0
        with pytest.raises(FsError):
            verify_file(handle, raise_on_error=True)

    def test_detects_live_metalog_entry(self, handle):
        handle.write(0, b"x" * 4096)
        fs = handle.fs
        from repro.core.metalog import MetaSlot

        fs.metalog.write(5, handle.inode.id, 64, 1, 0, 4096, [MetaSlot(0, True, False, 1)])
        report = verify_file(handle)
        assert not report.ok
        assert any("metadata-log" in e for e in report.errors)
