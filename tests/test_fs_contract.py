"""Contract tests every file system must satisfy."""

from __future__ import annotations

import random

import pytest

from repro.errors import BadFileDescriptor, FileNotFound
from repro.fsapi.interface import OpenFlags

from tests.conftest import ALL_FS_NAMES, make_all_filesystems, make_filesystem

CAP = 256 * 1024


@pytest.fixture(params=ALL_FS_NAMES)
def any_fs(request):
    return make_filesystem(request.param, device_size=32 << 20)


class TestContract:
    def test_create_then_read_empty(self, any_fs):
        f = any_fs.create("x", CAP)
        assert f.size == 0
        assert f.read(0, 100) == b""

    def test_read_your_writes(self, any_fs):
        f = any_fs.create("x", CAP)
        f.write(0, b"abc")
        f.write(10, b"def")
        assert f.read(0, 3) == b"abc"
        assert f.read(10, 3) == b"def"

    def test_overwrite(self, any_fs):
        f = any_fs.create("x", CAP)
        f.write(0, b"aaaa")
        f.write(1, b"bb")
        assert f.read(0, 4) == b"abba"

    def test_size_tracks_max_extent(self, any_fs):
        f = any_fs.create("x", CAP)
        f.write(100, b"z")
        assert f.size == 101
        f.write(0, b"z")
        assert f.size == 101

    def test_read_clipped_at_eof(self, any_fs):
        f = any_fs.create("x", CAP)
        f.write(0, b"12345")
        assert f.read(3, 100) == b"45"
        assert f.read(5, 10) == b""

    def test_fsync_then_read(self, any_fs):
        f = any_fs.create("x", CAP)
        f.write(0, b"persist me")
        f.fsync()
        assert f.read(0, 10) == b"persist me"

    def test_fuzz_against_reference(self, any_fs):
        f = any_fs.create("x", CAP)
        rng = random.Random(42)
        ref = bytearray(CAP)
        size = 0
        for i in range(120):
            off = rng.randrange(0, CAP - 1)
            ln = min(rng.choice([1, 17, 512, 4096, 10000]), CAP - off)
            payload = bytes([rng.randrange(1, 256)]) * ln
            f.write(off, payload)
            ref[off : off + ln] = payload
            size = max(size, off + ln)
            if i % 9 == 0:
                f.fsync()
            roff = rng.randrange(0, size)
            rlen = min(rng.choice([1, 100, 6000]), size - roff)
            assert f.read(roff, rlen) == bytes(ref[roff : roff + rlen]), (any_fs.name, i)

    def test_closed_handle_rejected(self, any_fs):
        f = any_fs.create("x", CAP)
        f.close()
        with pytest.raises(BadFileDescriptor):
            f.read(0, 1)
        with pytest.raises(BadFileDescriptor):
            f.write(0, b"x")

    def test_open_missing_raises(self, any_fs):
        with pytest.raises(FileNotFound):
            any_fs.open("missing")

    def test_open_creat(self, any_fs):
        f = any_fs.open("fresh", OpenFlags.RDWR | OpenFlags.CREAT)
        f.write(0, b"ok")
        assert f.read(0, 2) == b"ok"

    def test_exists_and_unlink(self, any_fs):
        f = any_fs.create("x", CAP)
        f.close()
        assert any_fs.exists("x")
        any_fs.unlink("x")
        assert not any_fs.exists("x")

    def test_close_then_reopen_preserves_data(self, any_fs):
        f = any_fs.create("x", CAP)
        f.write(0, b"survives close")
        f.close()
        f2 = any_fs.open("x")
        assert f2.read(0, 14) == b"survives close"

    def test_two_files_isolated(self, any_fs):
        a = any_fs.create("a", CAP)
        b = any_fs.create("b", CAP)
        a.write(0, b"AAAA")
        b.write(0, b"BBBB")
        assert a.read(0, 4) == b"AAAA"
        assert b.read(0, 4) == b"BBBB"

    def test_ops_produce_traces(self, any_fs):
        f = any_fs.create("x", CAP)
        any_fs.take_traces()
        f.write(0, b"y" * 4096)
        traces = any_fs.take_traces()
        assert traces
        assert sum(t.duration_ns(any_fs.timing.lock_ns) for t in traces) > 0

    def test_api_stats_track_bytes(self, any_fs):
        f = any_fs.create("x", CAP)
        base = any_fs.api.snapshot()
        f.write(0, b"y" * 1000)
        f.read(0, 500)
        delta = any_fs.api.delta(base)
        assert delta.bytes_written == 1000
        assert delta.bytes_read == 500
        assert delta.writes == 1 and delta.reads == 1


class TestConsistencyLevels:
    def test_declared_levels(self):
        levels = {fs.name: fs.consistency for fs in make_all_filesystems()}
        assert levels["MGSP"] == "operation"
        assert levels["NOVA"] == "operation"
        assert levels["Libnvmmio"] == "fsync"
        assert levels["Ext4-DAX"] == "metadata"

    def test_kernel_vs_user_space(self):
        spaces = {fs.name: fs.kernel_space for fs in make_all_filesystems()}
        assert spaces["MGSP"] is False
        assert spaces["Libnvmmio"] is False
        assert spaces["Ext4-DAX"] is True
        assert spaces["NOVA"] is True

    def test_user_space_synced_write_cheaper_than_kernel(self):
        """The central software-stack claim: a synchronized-atomic 4K
        write (write + fsync) costs less virtual time in user space than
        the kernel-space equivalent."""
        costs = {}
        for fs in make_all_filesystems(device_size=32 << 20):
            f = fs.create("x", CAP)
            fs.take_traces()
            f.write(0, b"z" * 4096)
            f.fsync()
            traces = fs.take_traces()
            costs[fs.name] = sum(t.duration_ns(fs.timing.lock_ns) for t in traces)
        assert costs["MGSP"] < costs["Ext4-DAX"]
        assert costs["MGSP"] < costs["NOVA"]
