"""Model-checking-flavoured crash verification.

Instead of sampling random persistence subsets, pick crash points where
the number of unfenced 8-byte words is small and enumerate EVERY subset
— recovery must produce a legal state for all 2^k of them. This is the
strongest statement the simulator can make about the commit protocol.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.core import MgspConfig, MgspFilesystem, recover
from repro.errors import CrashRequested
from repro.nvm.crash import CrashPlan
from repro.nvm.device import NvmDevice

CAP = 128 * 1024
MAX_ENUM_WORDS = 8  # 2^8 = 256 recoveries per crash point


def build_crashed_state(crash_after, seed=21):
    fs = MgspFilesystem(device_size=32 << 20, config=MgspConfig(degree=16))
    f = fs.create("e", capacity=CAP)
    fs.device.drain()
    rng = random.Random(seed)
    ref = bytearray(CAP)
    pending = None
    fs.device.crash_plan = CrashPlan(crash_after)
    try:
        for _ in range(10_000):
            off = rng.randrange(0, CAP - 2048)
            payload = bytes([rng.randrange(1, 255)]) * rng.choice([96, 1024, 2048])
            pending = (off, payload)
            f.write(off, payload)
            ref[off : off + len(payload)] = payload
            pending = None
    except CrashRequested:
        return fs, ref, pending
    return None


def legal_states(ref, pending):
    old = bytes(ref)
    states = {old}
    if pending is not None:
        off, payload = pending
        new = bytearray(ref)
        new[off : off + len(payload)] = payload
        states.add(bytes(new))
    return states


def test_every_persistence_subset_recovers_legally():
    checked_points = 0
    enumerated = 0
    for crash_after in range(1, 260, 13):
        state = build_crashed_state(crash_after)
        if state is None:
            break
        fs, ref, pending = state
        words = fs.device.unfenced_words()
        if len(words) > MAX_ENUM_WORDS:
            continue  # enumerate only tractable frontiers
        checked_points += 1
        legal = legal_states(ref, pending)
        if enumerated > 600:
            break  # plenty of coverage; keep the suite fast
        for r in range(len(words) + 1):
            for subset in itertools.combinations(words, r):
                enumerated += 1
                image = fs.device.crash_image(persist_words=subset)
                fs2, _ = recover(
                    NvmDevice.from_image(bytes(image)), config=MgspConfig(degree=16)
                )
                got = fs2.open("e").read(0, CAP).ljust(CAP, b"\0")
                assert got in legal, (
                    f"crash_after={crash_after} subset={subset}: illegal state"
                )
    # The sweep must actually have exercised enumerable frontiers.
    assert checked_points >= 3, checked_points
    assert enumerated >= 40, enumerated


def test_commit_frontier_is_narrow():
    """At any instant, the unfenced set stays small (the protocol fences
    eagerly): this is what makes exhaustive enumeration meaningful."""
    fs = MgspFilesystem(device_size=32 << 20, config=MgspConfig(degree=16))
    f = fs.create("e", capacity=CAP)
    fs.device.drain()
    worst = 0
    rng = random.Random(5)
    for _ in range(60):
        f.write(rng.randrange(0, CAP - 4096), b"q" * 4096)
        worst = max(worst, len(fs.device.unfenced_words()))
    # Between ops only the retired metalog length word (+ maybe the
    # size field and a handful of table slots) can be unfenced.
    assert worst <= 6, worst
