"""Exhaustive crash testing for the durable MPSC queue (ISSUE 6).

Every crash point of a small :class:`PqueueSweepWorkload` run is swept
under all three crash policies, in both hint-persistence modes, in
``test_crash_parity.py`` style: census parity first (enumerated points
must equal events that can fire), then recovery + oracle check + the
idempotent-fixpoint property on every composed image.

The sweep workload's own ``check`` is the oracle: recovered live items
must match a legal abstract state (commit/consume in-flight windows
included), drain order must match the scan, and a second recovery over
the first recovery's durable bytes must be a no-op.
"""

from __future__ import annotations

import pytest

from repro.nvm.crash import CrashPlan, CrashPolicy, compose_image, count_events

from repro.crashsweep.census import take_census
from repro.crashsweep.sweep import POLICIES, sweep_unit
from repro.crashsweep.workloads import PqueueSweepWorkload

#: two rounds keep the exhaustive product (points x policies x configs)
#: in the low thousands of images while still crossing a slot-reuse
#: wraparound (6 items through 8 slots per round).
ROUNDS = 2


def small_workload():
    return PqueueSweepWorkload(rounds=ROUNDS)


class TestCensusParity:
    @pytest.mark.parametrize("config", ["sync", "async"])
    def test_enumerated_points_match_fired_events(self, config):
        census = take_census(small_workload(), config)
        assert census.parity_ok, (census.events, census.derived)
        assert census.events > 0

    def test_async_emits_fewer_events_than_sync(self):
        """async skips the per-op hint persists, so its event stream is
        strictly shorter — the config axis is real, not cosmetic."""
        sync = take_census(small_workload(), "sync").events
        async_ = take_census(small_workload(), "async").events
        assert async_ < sync


class TestExhaustiveSweep:
    @pytest.mark.parametrize("config", ["sync", "async"])
    def test_every_point_every_policy_recovers(self, config):
        workload = small_workload()
        census = take_census(workload, config)
        failures = []
        for point in range(census.events):
            outcome = workload.run(config, CrashPlan(point))
            assert outcome.crashed, f"plan at {point} never fired"
            for policy in POLICIES:
                image = compose_image(
                    outcome.fs.device, policy, seed=1_000_003 + point
                )
                violations = workload.check(
                    image, config, outcome.oracles, idempotence=True
                )
                if violations:
                    failures.append((point, policy.value, violations[0]))
        assert not failures, failures[:5]

    def test_crash_beyond_stream_is_complete_run(self):
        workload = small_workload()
        census = take_census(workload, "sync")
        outcome = workload.run("sync", CrashPlan(census.events + 10))
        assert not outcome.crashed

    def test_partial_event_parity_at_crash(self):
        """At a mid-stream crash the events completed equal the plan's
        crash index — the census enumeration addresses real states."""
        workload = small_workload()
        census = take_census(workload, "sync")
        for point in (0, census.events // 2, census.events - 1):
            outcome = workload.run("sync", CrashPlan(point))
            completed = count_events(outcome.fs.device, since=outcome.stats_base)
            assert completed == point


class TestSweepUnitIntegration:
    def test_registered_workload_sweeps_clean(self):
        """The registry-name path (what ``python -m repro.crashsweep
        --workload pqueue-mpsc`` runs) stays green on a sampled budget."""
        unit = sweep_unit("pqueue-mpsc", "sync", budget=24, seed=7)
        assert unit.census.parity_ok
        assert not unit.failures

    def test_async_config_sweeps_clean(self):
        unit = sweep_unit("pqueue-mpsc", "async", budget=24, seed=7)
        assert unit.census.parity_ok
        assert not unit.failures
