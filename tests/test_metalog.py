"""Lock-free metadata log: layout, claim/probe, checksum validation."""

from __future__ import annotations

import pytest

from repro.core.metalog import (
    ENTRY_SIZE,
    MAX_SLOTS,
    MetadataLog,
    MetaSlot,
)
from repro.errors import FsError
from repro.fsapi.layout import Region
from repro.nvm.device import NvmDevice


@pytest.fixture
def metalog(device):
    return MetadataLog(device, Region(4096, 4096 + 32 * ENTRY_SIZE), entries=32)


def slots(n, leaf=True):
    return [MetaSlot(ordinal=i, is_leaf=leaf, valid=not leaf, leaf_mask=0xF0 + i) for i in range(n)]


class TestSlots:
    def test_roundtrip(self):
        for slot in (
            MetaSlot(0, True, False, 0xFFFFFFFF),
            MetaSlot((1 << 28) - 1, False, True, 0),
            MetaSlot(12345, True, True, 0xABCD),
        ):
            assert MetaSlot.unpack(slot.pack()) == slot

    def test_pack_is_8_bytes(self):
        assert len(MetaSlot(1, True, False, 2).pack()) == 8


class TestWriteScan:
    def test_entry_roundtrip(self, metalog):
        metalog.write(3, file_id=7, length=100, gen=5, offset=4096, file_size=8192, slots=slots(4))
        (entry,) = metalog.scan()
        assert entry.index == 3
        assert entry.file_id == 7
        assert entry.length == 100
        assert entry.gen == 5
        assert entry.offset == 4096
        assert entry.file_size == 8192
        assert entry.slots == slots(4)

    def test_retired_entry_invisible(self, metalog):
        metalog.write(0, 1, 10, 1, 0, 10, slots(1))
        metalog.retire(0)
        assert metalog.scan() == []

    def test_multiple_entries(self, metalog):
        metalog.write(0, 1, 10, 1, 0, 10, slots(1))
        metalog.write(5, 2, 20, 2, 0, 20, slots(2))
        found = {e.index for e in metalog.scan()}
        assert found == {0, 5}

    def test_too_many_slots_rejected(self, metalog):
        with pytest.raises(FsError):
            metalog.write(0, 1, 10, 1, 0, 10, slots(MAX_SLOTS + 1))

    def test_max_slots_fit_in_entry(self, metalog):
        metalog.write(0, 1, 10, 1, 0, 10, slots(MAX_SLOTS))
        (entry,) = metalog.scan()
        assert len(entry.slots) == MAX_SLOTS

    def test_small_entry_flushes_64_bytes(self, metalog, device):
        before = device.stats.stored_bytes
        metalog.write(0, 1, 10, 1, 0, 10, slots(3))
        assert device.stats.stored_bytes - before == 64

    def test_large_entry_flushes_128_bytes(self, metalog, device):
        before = device.stats.stored_bytes
        metalog.write(0, 1, 10, 1, 0, 10, slots(4))
        assert device.stats.stored_bytes - before == ENTRY_SIZE

    def test_torn_entry_rejected_by_checksum(self, metalog, device):
        metalog.write(0, 1, 10, 1, 0, 10, slots(2))
        # Corrupt one byte of the entry body behind the log's back.
        off = metalog.entry_offset(0) + 20
        raw = device.buffer.load(off, 1)
        device.buffer.store(off, bytes([raw[0] ^ 0xFF]))
        assert metalog.scan() == []

    def test_garbage_region_scans_empty(self, metalog):
        assert metalog.scan() == []


class TestClaim:
    def test_claim_release(self, metalog):
        idx = metalog.claim(thread_id=0)
        metalog.release(idx)
        assert metalog.claim(thread_id=0) == idx  # entry is free again

    def test_same_thread_hash_stable(self, metalog):
        a = metalog.claim(7)
        metalog.release(a)
        b = metalog.claim(7)
        assert a == b

    def test_linear_probing_past_busy(self, metalog):
        a = metalog.claim(7)
        b = metalog.claim(7)
        assert b == (a + 1) % metalog.entries

    def test_exhaustion(self, metalog):
        for i in range(metalog.entries):
            metalog.claim(i * 1000)
        with pytest.raises(FsError):
            metalog.claim(99)

    def test_region_too_small_rejected(self, device):
        with pytest.raises(FsError):
            MetadataLog(device, Region(0, ENTRY_SIZE), entries=2)
