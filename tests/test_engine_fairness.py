"""Replay-engine scheduling details: fairness, ordering, accounting."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.nvm.timing import TimingModel
from repro.sim.engine import ReplayEngine
from repro.sim.trace import OpTrace


def timing(channels=4):
    return TimingModel(channels=channels, lock_ns=0.0)


def trace(*segments):
    return OpTrace(name="t", segments=list(segments))


class TestFairness:
    def test_fifo_wakeup_order(self):
        """Three writers queue behind a holder; they run in arrival order."""
        engine = ReplayEngine(timing())
        hold = [trace(("lock", "k", "W"), ("compute", 1000.0), ("unlock", "k"))]
        # Stagger arrivals with a compute prefix.
        writers = [
            [trace(("compute", float(i)), ("lock", "k", "W"), ("compute", 100.0), ("unlock", "k"))]
            for i in (1, 2, 3)
        ]
        result = engine.run([hold] + writers)
        finishes = [t.finish_ns for t in result.threads[1:]]
        assert finishes == sorted(finishes)

    def test_writer_not_starved_by_readers(self):
        """FIFO queueing: a writer arriving between readers eventually
        runs — later readers queue behind it rather than jumping it."""
        engine = ReplayEngine(timing())
        first_reader = [trace(("lock", "k", "R"), ("compute", 1000.0), ("unlock", "k"))]
        writer = [trace(("compute", 10.0), ("lock", "k", "W"), ("compute", 10.0), ("unlock", "k"))]
        late_readers = [
            [trace(("compute", 50.0 + i), ("lock", "k", "R"), ("compute", 1000.0), ("unlock", "k"))]
            for i in range(3)
        ]
        result = engine.run([first_reader, writer] + late_readers)
        writer_finish = result.threads[1].finish_ns
        # Writer completes right after the first reader (~1000), NOT
        # after all readers (~2000+).
        assert writer_finish < 1500.0

    def test_mixed_intention_and_exclusive(self):
        engine = ReplayEngine(timing())
        iw_holders = [
            [trace(("lock", "k", "IW"), ("compute", 500.0), ("unlock", "k"))]
            for _ in range(3)
        ]
        exclusive = [trace(("compute", 5.0), ("lock", "k", "W"), ("compute", 10.0), ("unlock", "k"))]
        result = engine.run(iw_holders + [exclusive])
        # IWs overlap (finish ~500); W waits for all of them.
        assert result.threads[3].finish_ns >= 500.0


class TestAccounting:
    def test_compute_and_io_tallied(self):
        engine = ReplayEngine(timing())
        result = engine.run([[trace(("compute", 100.0), ("io", 50.0))]])
        assert result.threads[0].compute_ns == 100.0
        assert result.threads[0].io_ns == 50.0

    def test_ops_counted_per_thread(self):
        engine = ReplayEngine(timing())
        result = engine.run([[trace(("compute", 1.0)) for _ in range(7)]])
        assert result.threads[0].ops == 7

    def test_blocked_acquires_counted(self):
        engine = ReplayEngine(timing())
        h = [trace(("lock", "k", "W"), ("compute", 100.0), ("unlock", "k"))]
        w = [trace(("compute", 1.0), ("lock", "k", "W"), ("unlock", "k"))]
        result = engine.run([h, w])
        assert result.threads[1].blocked_acquires == 1
        assert result.threads[0].blocked_acquires == 0

    def test_channel_queue_time_counted_as_wait(self):
        engine = ReplayEngine(timing(channels=1))
        result = engine.run([[trace(("io", 100.0))], [trace(("io", 100.0))]])
        assert result.total_lock_wait_ns >= 100.0


class TestEdgeCases:
    def test_zero_duration_segments(self):
        engine = ReplayEngine(timing())
        result = engine.run([[trace(("compute", 0.0), ("io", 0.0))]])
        assert result.makespan_ns == 0.0

    def test_thread_with_only_locks(self):
        engine = ReplayEngine(timing())
        result = engine.run([[trace(("lock", "a", "R"), ("unlock", "a"))]])
        assert result.makespan_ns >= 0.0

    def test_unlock_never_acquired_raises(self):
        engine = ReplayEngine(timing())
        with pytest.raises(KeyError):
            engine.run([[trace(("unlock", "ghost"))]])

    def test_self_deadlock_single_thread_reentrant(self):
        """A thread may retake a lock it holds (re-entrancy by design)."""
        engine = ReplayEngine(timing())
        result = engine.run(
            [[trace(("lock", "k", "W"), ("lock", "k", "W"), ("unlock", "k"), ("unlock", "k"))]]
        )
        assert result.makespan_ns >= 0.0

    def test_locks_held_across_op_boundaries(self):
        """Lock in one OpTrace, unlock in the next (txn-style)."""
        engine = ReplayEngine(timing())
        t0 = [trace(("lock", "k", "W"), ("compute", 100.0)), trace(("unlock", "k"))]
        t1 = [trace(("compute", 1.0), ("lock", "k", "W"), ("unlock", "k"))]
        result = engine.run([t0, t1])
        assert result.threads[1].blocked_acquires == 1

    def test_occupancy_defaults_to_visible(self):
        engine = ReplayEngine(timing(channels=1))
        two = [[trace(("io", 100.0))], [trace(("io", 100.0))]]
        assert engine.run(two).makespan_ns == 200.0

    def test_large_thread_count(self):
        engine = ReplayEngine(timing())
        traces = [[trace(("compute", float(i)))] for i in range(200)]
        result = engine.run(traces)
        assert result.makespan_ns == 199.0
        assert len(result.threads) == 200
