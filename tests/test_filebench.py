"""Filebench-style personalities."""

from __future__ import annotations

import pytest

from repro.bench.registry import make_fs
from repro.workloads.filebench import PERSONALITIES, run_filebench


class TestFilebench:
    @pytest.mark.parametrize("personality", PERSONALITIES)
    @pytest.mark.parametrize("fs_name", ["Ext4-DAX", "NOVA", "MGSP", "Libnvmmio"])
    def test_personalities_run(self, personality, fs_name):
        fs = make_fs(fs_name, device_size=96 << 20)
        result = run_filebench(fs, personality=personality, operations=60)
        assert result.ops_per_sec > 0
        assert sum(result.per_op.values()) == 60

    def test_unknown_personality(self):
        with pytest.raises(ValueError):
            run_filebench(make_fs("MGSP", device_size=96 << 20), personality="oltp")

    def test_namespace_consistent_after_churn(self):
        fs = make_fs("MGSP", device_size=96 << 20)
        run_filebench(fs, personality="fileserver", operations=120)
        # Every surviving file is readable and internally consistent.
        for inode in fs.volume.files():
            assert inode.size <= inode.capacity

    def test_varmail_fsync_heavy_favors_mgsp_over_dax(self):
        """varmail fsyncs constantly: MGSP's cheap sync wins over the
        journal-commit-per-fsync of Ext4-DAX."""
        results = {}
        for name in ("Ext4-DAX", "MGSP"):
            fs = make_fs(name, device_size=96 << 20)
            results[name] = run_filebench(fs, personality="varmail", operations=120).ops_per_sec
        assert results["MGSP"] > results["Ext4-DAX"]

    def test_fileserver_unsynced_favors_relaxed_fs(self):
        """fileserver never fsyncs: Ext4-DAX's fire-and-forget writes
        beat MGSP's always-synchronized ops — the price of the guarantee
        when nobody asks for it."""
        results = {}
        for name in ("Ext4-DAX", "MGSP"):
            fs = make_fs(name, device_size=96 << 20)
            results[name] = run_filebench(fs, personality="fileserver", operations=120).ops_per_sec
        assert results["Ext4-DAX"] > results["MGSP"] * 0.9

    def test_deterministic(self):
        a = run_filebench(make_fs("NOVA", device_size=96 << 20), operations=50)
        b = run_filebench(make_fs("NOVA", device_size=96 << 20), operations=50)
        assert a.elapsed_ns == b.elapsed_ns
        assert a.per_op == b.per_op
