"""IntervalSet: unit tests + property tests against a set-of-ints model."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nvm.intervals import IntervalSet


class TestBasics:
    def test_empty(self):
        s = IntervalSet()
        assert not s
        assert len(s) == 0
        assert s.total() == 0
        assert list(s) == []

    def test_single_add(self):
        s = IntervalSet()
        s.add(5, 10)
        assert list(s) == [(5, 10)]
        assert s.total() == 5

    def test_add_empty_range_ignored(self):
        s = IntervalSet()
        s.add(5, 5)
        s.add(7, 3)
        assert not s

    def test_coalesce_touching(self):
        s = IntervalSet([(0, 5), (5, 10)])
        assert list(s) == [(0, 10)]

    def test_coalesce_overlapping(self):
        s = IntervalSet([(0, 6), (4, 10)])
        assert list(s) == [(0, 10)]

    def test_disjoint_stay_apart(self):
        s = IntervalSet([(0, 5), (6, 10)])
        assert list(s) == [(0, 5), (6, 10)]

    def test_bridge_merge(self):
        s = IntervalSet([(0, 5), (10, 15)])
        s.add(5, 10)
        assert list(s) == [(0, 15)]

    def test_contains(self):
        s = IntervalSet([(10, 20)])
        assert s.contains(10)
        assert s.contains(19)
        assert not s.contains(20)
        assert not s.contains(9)

    def test_covers(self):
        s = IntervalSet([(10, 20)])
        assert s.covers(10, 20)
        assert s.covers(12, 15)
        assert not s.covers(5, 12)
        assert not s.covers(15, 25)
        assert s.covers(13, 13)  # empty range is always covered

    def test_overlaps(self):
        s = IntervalSet([(10, 20)])
        assert s.overlaps(15, 25)
        assert s.overlaps(5, 11)
        assert not s.overlaps(0, 10)
        assert not s.overlaps(20, 30)

    def test_remove_middle_splits(self):
        s = IntervalSet([(0, 10)])
        s.remove(3, 7)
        assert list(s) == [(0, 3), (7, 10)]

    def test_remove_across_intervals(self):
        s = IntervalSet([(0, 5), (8, 12), (15, 20)])
        s.remove(3, 16)
        assert list(s) == [(0, 3), (16, 20)]

    def test_remove_everything(self):
        s = IntervalSet([(0, 5), (8, 12)])
        s.remove(0, 12)
        assert not s

    def test_remove_nothing(self):
        s = IntervalSet([(5, 10)])
        s.remove(0, 5)
        s.remove(10, 20)
        assert list(s) == [(5, 10)]

    def test_intersect(self):
        s = IntervalSet([(0, 5), (8, 12), (15, 20)])
        assert list(s.intersect(3, 16)) == [(3, 5), (8, 12), (15, 16)]
        assert list(s.intersect(5, 8)) == []

    def test_pop_all(self):
        s = IntervalSet([(1, 2), (4, 6)])
        assert s.pop_all() == [(1, 2), (4, 6)]
        assert not s

    def test_update(self):
        a = IntervalSet([(0, 5)])
        b = IntervalSet([(3, 8), (10, 12)])
        a.update(b)
        assert list(a) == [(0, 8), (10, 12)]

    def test_equality(self):
        assert IntervalSet([(0, 5)]) == IntervalSet([(0, 3), (3, 5)])
        assert IntervalSet([(0, 5)]) != IntervalSet([(0, 4)])


ranges = st.lists(
    st.tuples(st.integers(0, 200), st.integers(1, 40)).map(lambda t: (t[0], t[0] + t[1])),
    max_size=30,
)
ops = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove"]),
        st.integers(0, 200),
        st.integers(1, 40),
    ),
    max_size=50,
)


def model_points(interval_set: IntervalSet) -> set:
    return {p for s, e in interval_set for p in range(s, e)}


class TestProperties:
    @given(ranges)
    def test_matches_point_set_model(self, rs):
        s = IntervalSet()
        model = set()
        for start, end in rs:
            s.add(start, end)
            model |= set(range(start, end))
        assert model_points(s) == model
        assert s.total() == len(model)

    @given(ops)
    def test_add_remove_matches_model(self, operations):
        s = IntervalSet()
        model = set()
        for op, start, width in operations:
            end = start + width
            if op == "add":
                s.add(start, end)
                model |= set(range(start, end))
            else:
                s.remove(start, end)
                model -= set(range(start, end))
            assert model_points(s) == model

    @given(ranges)
    def test_sorted_coalesced_invariant(self, rs):
        s = IntervalSet()
        for start, end in rs:
            s.add(start, end)
        items = list(s)
        for (s1, e1), (s2, e2) in zip(items, items[1:]):
            assert e1 < s2  # strictly separated (touching would coalesce)
        for start, end in items:
            assert start < end

    @given(ranges, st.integers(0, 250), st.integers(0, 250))
    def test_intersect_is_model_intersection(self, rs, a, b):
        lo, hi = min(a, b), max(a, b)
        s = IntervalSet()
        for start, end in rs:
            s.add(start, end)
        got = model_points(s.intersect(lo, hi))
        assert got == model_points(s) & set(range(lo, hi))


class TestAddFastPaths:
    """The O(1) add shortcuts (append-at-end, last-interval extension,
    full containment) must be invisible: same set as the general path."""

    def test_append_at_end(self):
        s = IntervalSet()
        for i in range(5):
            s.add(i * 100, i * 100 + 10)
        assert list(s) == [(i * 100, i * 100 + 10) for i in range(5)]

    def test_touching_end_coalesces(self):
        s = IntervalSet([(0, 10)])
        s.add(10, 20)
        assert list(s) == [(0, 20)]

    def test_overlapping_end_extends(self):
        s = IntervalSet([(0, 10)])
        s.add(5, 30)
        assert list(s) == [(0, 30)]

    def test_extension_inside_last_is_noop(self):
        s = IntervalSet([(0, 100)])
        s.add(50, 60)
        assert list(s) == [(0, 100)]

    def test_full_containment_in_earlier_interval(self):
        s = IntervalSet([(0, 100), (200, 300)])
        s.add(10, 20)
        assert list(s) == [(0, 100), (200, 300)]

    def test_containment_check_does_not_miss_bridges(self):
        # Spans the gap between two intervals: must still merge.
        s = IntervalSet([(0, 100), (200, 300)])
        s.add(50, 250)
        assert list(s) == [(0, 300)]

    @given(ranges)
    def test_ascending_adds_match_shuffled_adds(self, rs):
        ordered = IntervalSet()
        for start, end in sorted(rs):
            ordered.add(start, end)
        shuffled = IntervalSet()
        for start, end in reversed(rs):
            shuffled.add(start, end)
        assert ordered == shuffled
