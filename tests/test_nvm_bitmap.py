"""RangeBitmap must behave exactly like the IntervalSet it replaced,
including ascending run order (load-bearing for seeded crash images)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nvm.bitmap import CHUNK_BITS, RangeBitmap, iter_bit_runs
from repro.nvm.intervals import IntervalSet


class TestBitRuns:
    def test_empty_mask(self):
        assert list(iter_bit_runs(0)) == []

    def test_single_bit(self):
        assert list(iter_bit_runs(1 << 5)) == [(5, 6)]

    def test_multiple_runs(self):
        mask = 0b1110010110
        assert list(iter_bit_runs(mask)) == [(1, 3), (4, 5), (7, 10)]

    def test_full_chunk(self):
        assert list(iter_bit_runs((1 << CHUNK_BITS) - 1)) == [(0, CHUNK_BITS)]


# Word-aligned ranges spanning several chunks at grain 8
# (one chunk = CHUNK_BITS * 8 bytes = 32 KB).
aligned_ranges = st.lists(
    st.tuples(st.integers(0, 12_000), st.integers(1, 600)).map(
        lambda t: (t[0] * 8, t[0] * 8 + t[1] * 8)
    ),
    max_size=30,
)
ops = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove"]),
        st.integers(0, 12_000),
        st.integers(1, 600),
    ),
    max_size=40,
)


class TestEquivalenceWithIntervalSet:
    @given(aligned_ranges)
    @settings(max_examples=80, deadline=None)
    def test_adds_produce_identical_runs(self, ranges):
        bm = RangeBitmap(8)
        ref = IntervalSet()
        for start, end in ranges:
            bm.add(start, end)
            ref.add(start, end)
        assert list(bm.runs()) == list(ref)
        assert len(bm) == len(ref)
        assert bm.total() == ref.total()
        assert bool(bm) == bool(ref)

    @given(ops)
    @settings(max_examples=80, deadline=None)
    def test_mixed_adds_removes_match(self, operations):
        bm = RangeBitmap(8)
        ref = IntervalSet()
        for op, word, nwords in operations:
            start, end = word * 8, (word + nwords) * 8
            if op == "add":
                bm.add(start, end)
                ref.add(start, end)
            else:
                bm.remove(start, end)
                ref.remove(start, end)
        assert list(bm.runs()) == list(ref)

    @given(ops, st.integers(0, 12_600), st.integers(0, 12_600))
    @settings(max_examples=80, deadline=None)
    def test_iter_intersect_matches(self, operations, a, b):
        lo, hi = min(a, b) * 8, max(a, b) * 8
        bm = RangeBitmap(8)
        ref = IntervalSet()
        for op, word, nwords in operations:
            start, end = word * 8, (word + nwords) * 8
            if op == "add":
                bm.add(start, end)
                ref.add(start, end)
            else:
                bm.remove(start, end)
                ref.remove(start, end)
        assert list(bm.iter_intersect(lo, hi)) == list(ref.iter_intersect(lo, hi))
        assert bm.overlaps(lo, hi) == ref.overlaps(lo, hi)

    @given(ops, st.integers(0, 12_600))
    @settings(max_examples=60, deadline=None)
    def test_contains_matches(self, operations, word):
        bm = RangeBitmap(8)
        ref = IntervalSet()
        for op, w, nwords in operations:
            start, end = w * 8, (w + nwords) * 8
            if op == "add":
                bm.add(start, end)
                ref.add(start, end)
            else:
                bm.remove(start, end)
                ref.remove(start, end)
        assert bm.contains(word * 8) == ref.contains(word * 8)


class TestRunOrdering:
    def test_runs_ascend_across_chunk_borders(self):
        bm = RangeBitmap(8)
        chunk_bytes = CHUNK_BITS * 8
        # A run straddling a chunk border must come out as one range.
        bm.add(chunk_bytes - 64, chunk_bytes + 64)
        bm.add(8, 16)
        bm.add(3 * chunk_bytes, 3 * chunk_bytes + 8)
        assert list(bm.runs()) == [
            (8, 16),
            (chunk_bytes - 64, chunk_bytes + 64),
            (3 * chunk_bytes, 3 * chunk_bytes + 8),
        ]

    def test_pop_runs_clears(self):
        bm = RangeBitmap(64)
        bm.add(0, 128)
        assert bm.pop_runs() == [(0, 128)]
        assert not bm
        assert bm.pop_runs() == []

    def test_count_is_popcount(self):
        bm = RangeBitmap(64)
        bm.add(0, 256)
        bm.add(1024, 1088)
        assert bm.count(0, 2048) == 5
        assert bm.count(64, 192) == 2
