"""B+tree over the pager: point ops, splits, scans, fuzz vs dict."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.db.btree import BTree
from repro.db.pager import Pager
from repro.fs import Ext4Dax


def make_tree(cache_pages=10_000):
    fs = Ext4Dax(device_size=64 << 20)
    handle = fs.create("db", 16 << 20)
    pager = Pager(handle, cache_pages=cache_pages)
    root = pager.allocate()
    return BTree(pager, root, initialize=True), pager


def k(i):
    return f"key-{i:08d}".encode()


class TestPointOps:
    def test_insert_get(self):
        tree, _ = make_tree()
        tree.insert(b"a", b"1")
        tree.insert(b"b", b"2")
        assert tree.get(b"a") == b"1"
        assert tree.get(b"b") == b"2"
        assert tree.get(b"c") is None

    def test_upsert_overwrites(self):
        tree, _ = make_tree()
        tree.insert(b"a", b"1")
        tree.insert(b"a", b"2")
        assert tree.get(b"a") == b"2"
        assert tree.count() == 1

    def test_delete(self):
        tree, _ = make_tree()
        tree.insert(b"a", b"1")
        assert tree.delete(b"a") is True
        assert tree.get(b"a") is None
        assert tree.delete(b"a") is False

    def test_empty_tree(self):
        tree, _ = make_tree()
        assert tree.get(b"x") is None
        assert tree.count() == 0
        assert list(tree.scan()) == []


class TestSplits:
    def test_many_inserts_force_splits(self):
        tree, pager = make_tree()
        n = 2000
        for i in range(n):
            tree.insert(k(i), b"v" * 50)
        assert pager.page_count > 10  # splits happened
        for i in range(0, n, 97):
            assert tree.get(k(i)) == b"v" * 50
        assert tree.count() == n

    def test_root_page_is_stable(self):
        tree, _ = make_tree()
        root = tree.root_page
        for i in range(2000):
            tree.insert(k(i), b"v" * 60)
        assert tree.root_page == root  # root split rewrote in place

    def test_reverse_insertion_order(self):
        tree, _ = make_tree()
        for i in reversed(range(1000)):
            tree.insert(k(i), str(i).encode())
        assert [key for key, _ in tree.scan()] == [k(i) for i in range(1000)]

    def test_large_values(self):
        tree, _ = make_tree()
        for i in range(30):
            tree.insert(k(i), bytes([i]) * 1500)
        for i in range(30):
            assert tree.get(k(i)) == bytes([i]) * 1500


class TestScans:
    def test_full_scan_sorted(self):
        tree, _ = make_tree()
        keys = [f"{x:04d}".encode() for x in random.Random(1).sample(range(5000), 500)]
        for key in keys:
            tree.insert(key, b"v")
        assert [key for key, _ in tree.scan()] == sorted(keys)

    def test_range_scan(self):
        tree, _ = make_tree()
        for i in range(100):
            tree.insert(k(i), str(i).encode())
        got = [key for key, _ in tree.scan(k(10), k(20))]
        assert got == [k(i) for i in range(10, 20)]

    def test_scan_from_missing_start(self):
        tree, _ = make_tree()
        tree.insert(b"b", b"1")
        tree.insert(b"d", b"2")
        assert [key for key, _ in tree.scan(b"c")] == [b"d"]

    def test_scan_crosses_leaf_boundaries(self):
        tree, _ = make_tree()
        n = 3000
        for i in range(n):
            tree.insert(k(i), b"x" * 40)
        assert sum(1 for _ in tree.scan(k(100), k(2900))) == 2800


class TestFuzz:
    def test_against_dict(self):
        tree, _ = make_tree()
        rng = random.Random(9)
        model = {}
        for step in range(3000):
            key = f"{rng.randrange(800):05d}".encode()
            action = rng.random()
            if action < 0.6:
                val = str(step).encode()
                tree.insert(key, val)
                model[key] = val
            elif action < 0.8:
                assert tree.get(key) == model.get(key)
            else:
                assert tree.delete(key) == (key in model)
                model.pop(key, None)
        assert dict(tree.scan()) == model

    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.lists(
            st.tuples(st.binary(min_size=1, max_size=30), st.binary(max_size=100)),
            max_size=300,
        )
    )
    def test_insert_scan_property(self, pairs):
        tree, _ = make_tree()
        model = {}
        for key, val in pairs:
            tree.insert(key, val)
            model[key] = val
        assert dict(tree.scan()) == model
        assert [key for key, _ in tree.scan()] == sorted(model)


class TestEvictionSafety:
    def test_tree_survives_tiny_cache(self):
        """Pages evicted and re-read from the file must parse back."""
        fs = Ext4Dax(device_size=64 << 20)
        handle = fs.create("db", 16 << 20)
        pager = Pager(handle, cache_pages=4)
        root = pager.allocate()
        tree = BTree(pager, root, initialize=True)
        for i in range(500):
            tree.insert(k(i), b"v" * 30)
            pager.flush_to_file()  # commit so clean pages may be evicted
            handle.fsync()
        for i in range(0, 500, 41):
            assert tree.get(k(i)) == b"v" * 30
