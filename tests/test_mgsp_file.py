"""MgspFile end-to-end: fuzz vs a flat reference, ablations, geometry."""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import MgspConfig, MgspFilesystem
from repro.core.metalog import MAX_SLOTS
from repro.errors import FsError

CAP = 1 << 20


def make_fs(**cfg):
    return MgspFilesystem(device_size=64 << 20, config=MgspConfig(degree=16, **cfg))


ALL_CONFIGS = {
    "full": {},
    "degree64": {"degree": 64},
    "no-shadow": {"shadow_logging": False},
    "no-multigran": {"multi_granularity": False},
    "no-finegrain": {"fine_grained_logging": False},
    "no-finelock": {"fine_grained_locking": False},
    "no-opts": {
        "min_search_tree": False,
        "lazy_intention_locks": False,
        "greedy_locking": False,
    },
}


@pytest.mark.parametrize("name,cfg", ALL_CONFIGS.items())
def test_fuzz_against_reference(name, cfg):
    params = {"degree": 16}
    params.update(cfg)
    fs = MgspFilesystem(device_size=64 << 20, config=MgspConfig(**params))
    f = fs.create("data", capacity=CAP)
    rng = random.Random(hash(name) & 0xFFFF)
    ref = bytearray(CAP)
    size = 0
    for i in range(150):
        off = rng.randrange(0, CAP - 1)
        ln = min(rng.choice([1, 37, 128, 600, 4096, 9000, 70000]), CAP - off)
        payload = bytes([rng.randrange(1, 256)]) * ln
        f.write(off, payload)
        ref[off : off + ln] = payload
        size = max(size, off + ln)
        assert f.size == size
        roff = rng.randrange(0, size)
        rlen = min(rng.choice([1, 129, 5000]), size - roff)
        assert f.read(roff, rlen) == bytes(ref[roff : roff + rlen]), (name, i)
    f.close()
    f2 = fs.open("data")
    assert f2.read(0, size) == bytes(ref[:size])
    f2.close()


class TestBasics:
    def test_write_read_roundtrip(self, mgsp):
        f = mgsp.create("a", capacity=CAP)
        f.write(0, b"hello world")
        assert f.read(0, 11) == b"hello world"
        assert f.size == 11

    def test_read_clipped_at_size(self, mgsp):
        f = mgsp.create("a", capacity=CAP)
        f.write(0, b"abc")
        assert f.read(0, 100) == b"abc"
        assert f.read(50, 10) == b""

    def test_empty_write_noop(self, mgsp):
        f = mgsp.create("a", capacity=CAP)
        assert f.write(0, b"") == 0
        assert f.size == 0

    def test_write_beyond_capacity_rejected(self, mgsp):
        f = mgsp.create("a", capacity=4096)
        with pytest.raises(FsError):
            f.write(4000, b"x" * 200)

    def test_negative_offset_rejected(self, mgsp):
        f = mgsp.create("a", capacity=4096)
        with pytest.raises(FsError):
            f.write(-1, b"x")

    def test_sparse_write_reads_zero_gap(self, mgsp):
        f = mgsp.create("a", capacity=CAP)
        f.write(100000, b"tail")
        assert f.read(0, 10) == b"\0" * 10
        assert f.read(100000, 4) == b"tail"

    def test_fsync_is_noop_semantically(self, mgsp):
        f = mgsp.create("a", capacity=CAP)
        f.write(0, b"x")
        f.fsync()
        assert f.read(0, 1) == b"x"

    def test_mmap_view(self, mgsp):
        f = mgsp.create("a", capacity=CAP)
        f.write(0, b"direct")
        device, base, cap = f.mmap_view()
        assert cap == CAP

    def test_write_durable_without_any_sync(self, mgsp):
        """Operation-level durability: the data fence happens inside
        write(), so nothing unfenced remains that the write depends on."""
        f = mgsp.create("a", capacity=CAP)
        mgsp.device.drain()
        f.write(0, b"y" * 128)
        # The payload region itself must be durable now.
        base = f.inode.base
        durable = mgsp.device.buffer.snapshot_durable()
        # Either in the file or in a leaf log; find it via recovery-free
        # check: the committed leaf's authoritative source is durable.
        leaf = f.tree.peek(0, 0)
        from repro.core import bitmap as bm

        mask = bm.unpack_leaf(leaf.word).mask
        src = leaf.log_off if mask & 1 else base
        assert bytes(durable[src : src + 128]) == b"y" * 128


class TestGrowth:
    def test_file_grows_height(self, mgsp):
        f = mgsp.create("a", capacity=CAP)
        h0 = f.tree.height
        f.write(CAP - 4096, b"x" * 4096)
        assert f.tree.height >= h0
        assert f.tree.covered() >= CAP
        assert f.size == CAP

    def test_growth_preserves_earlier_data(self):
        fs = MgspFilesystem(device_size=64 << 20, config=MgspConfig(degree=4))
        f = fs.create("a", capacity=CAP)
        f.write(0, b"first")
        for step in range(1, 6):
            off = step * 100000
            f.write(off, b"s%d" % step)
        assert f.read(0, 5) == b"first"
        for step in range(1, 6):
            assert f.read(step * 100000, 2) == b"s%d" % step


class TestSplitLargeWrites:
    def test_huge_write_splits_but_lands(self, mgsp):
        f = mgsp.create("a", capacity=CAP)
        blob = bytes(range(256)) * 1024  # 256 KB
        f.write(1234, blob)
        assert f.read(1234, len(blob)) == blob

    def test_terminal_count_estimator_matches_planner(self, mgsp):
        f = mgsp.create("a", capacity=CAP)
        for off, ln in [(0, 4096), (0, 65536), (100, 5000), (8192, 131072)]:
            estimated = f._terminal_count(off, ln, 10**6)
            plan = f.shadow.plan_write(off, b"\0" * ln, f.tree.next_gen())
            assert estimated == len(plan.commits), (off, ln)


class TestMinSearchTree:
    def test_sequential_hits(self, mgsp):
        f = mgsp.create("a", capacity=CAP)
        for i in range(20):
            f.write(i * 128, b"z" * 128)
        assert f.mst_hits > f.mst_misses

    def test_random_misses(self, mgsp):
        f = mgsp.create("a", capacity=CAP)
        rng = random.Random(0)
        offs = [rng.randrange(250) * 4096 for _ in range(30)]
        for off in offs:
            f.write(off, b"z" * 4096)
        assert f.mst_misses > 0

    def test_disabled_tracks_nothing(self):
        fs = make_fs(min_search_tree=False)
        f = fs.create("a", capacity=CAP)
        for i in range(5):
            f.write(i * 4096, b"z" * 4096)
        assert f.mst_hits == 0 and f.mst_misses == 0


class TestWriteAmplification:
    def test_aligned_4k_near_one(self, mgsp):
        f = mgsp.create("a", capacity=CAP)
        base = mgsp.device.stats.snapshot()
        for i in range(64):
            f.write((i * 4096) % CAP, b"w" * 4096)
        amp = mgsp.device.stats.delta(base).stored_bytes / (64 * 4096)
        assert 1.0 < amp < 1.1

    def test_shadow_off_doubles(self):
        fs = make_fs(shadow_logging=False)
        f = fs.create("a", capacity=CAP)
        base = fs.device.stats.snapshot()
        for i in range(64):
            f.write((i * 4096) % CAP, b"w" * 4096)
        amp = fs.device.stats.delta(base).stored_bytes / (64 * 4096)
        assert amp > 1.9


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(
        st.tuples(st.integers(0, CAP - 1), st.integers(1, 40000), st.integers(1, 255)),
        min_size=1,
        max_size=25,
    )
)
def test_hypothesis_read_your_writes(ops):
    fs = make_fs()
    f = fs.create("h", capacity=CAP)
    ref = bytearray(CAP)
    size = 0
    for off, ln, fill in ops:
        ln = min(ln, CAP - off)
        payload = bytes([fill]) * ln
        f.write(off, payload)
        ref[off : off + ln] = payload
        size = max(size, off + ln)
    assert f.read(0, size) == bytes(ref[:size])
