"""The documentation's code blocks must actually run.

Extracts every ```python block from docs/tutorial.md and README.md and
executes them in order within one namespace (the tutorial is written to
be sequentially runnable).
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent

_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def blocks(path: Path):
    return _BLOCK.findall(path.read_text())


def test_tutorial_runs_end_to_end():
    namespace = {}
    for i, code in enumerate(blocks(ROOT / "docs" / "tutorial.md")):
        try:
            exec(compile(code, f"tutorial.md[block {i}]", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(f"tutorial block {i} failed: {exc!r}\n{code}")


def test_readme_snippets_run():
    namespace = {}
    for i, code in enumerate(blocks(ROOT / "README.md")):
        if "pip install" in code or code.strip().startswith("pytest"):
            continue
        try:
            exec(compile(code, f"README.md[block {i}]", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(f"README block {i} failed: {exc!r}\n{code}")


def test_docs_exist_and_are_substantial():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                 "docs/architecture.md", "docs/api.md", "docs/tutorial.md"):
        path = ROOT / name
        assert path.exists(), name
        assert len(path.read_text()) > 1500, name
