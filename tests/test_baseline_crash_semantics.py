"""What each baseline promises (and doesn't) across a crash.

The paper's comparison table in prose: Ext4/Ext4-DAX lose or tear
unsynced data, Libnvmmio is atomic only at fsync boundaries, NOVA and
MGSP are atomic per operation. These tests pin the semantics the
simulated baselines implement.
"""

from __future__ import annotations

import random

import pytest

from repro.fs import Ext4, Ext4Dax, Libnvmmio, Nova
from repro.nvm.device import NvmDevice

CAP = 256 * 1024


def crash_image(fs, seed=1, p=0.5):
    return NvmDevice.from_image(
        bytes(fs.device.crash_image(rng=random.Random(seed), persist_probability=p))
    )


class TestExt4PageCache:
    def test_unsynced_data_fully_lost(self):
        fs = Ext4(device_size=64 << 20, mode="ordered")
        f = fs.create("x", CAP)
        fs.device.drain()
        f.write(0, b"volatile page cache")
        dev = crash_image(fs, p=1.0)  # even the kindest crash
        base = f.inode.base
        assert bytes(dev.buffer.working[base : base + 8]) == b"\0" * 8

    def test_synced_data_survives(self):
        fs = Ext4(device_size=64 << 20, mode="ordered")
        f = fs.create("x", CAP)
        f.write(0, b"synced")
        f.fsync()
        dev = crash_image(fs, p=0.0)  # the harshest crash
        assert bytes(dev.buffer.working[f.inode.base : f.inode.base + 6]) == b"synced"


class TestExt4DaxTearing:
    def test_unsynced_write_can_tear_mid_buffer(self):
        """DAX writes go straight to media but without ordering: a crash
        can persist an arbitrary word subset — data *corruption*, not
        just loss (the reason 'metadata consistency' isn't enough)."""
        fs = Ext4Dax(device_size=64 << 20)
        f = fs.create("x", CAP)
        f.write(0, b"A" * 256)
        f.fsync()
        f.write(0, b"B" * 256)
        words = fs.device.unfenced_words()
        half = words[: len(words) // 2]
        dev = NvmDevice.from_image(bytes(fs.device.crash_image(persist_words=half)))
        region = bytes(dev.buffer.working[f.inode.base : f.inode.base + 256])
        assert b"A" in region and b"B" in region  # torn!


class TestLibnvmmioFsyncGranularity:
    def test_unsynced_redo_writes_lost_cleanly(self):
        """Redo epoch: unsynced data sits in logs; a crash loses it but
        never corrupts the file (old data intact)."""
        fs = Libnvmmio(device_size=64 << 20)
        f = fs.create("x", CAP)
        f.write(0, b"OLD" * 1000)
        f.fsync()
        fs.device.drain()
        f.write(0, b"NEW" * 1000)  # logged, unsynced
        dev = crash_image(fs, p=0.0)
        base = f.inode.base
        assert bytes(dev.buffer.working[base : base + 3]) == b"OLD"

    def test_synced_epoch_durable(self):
        fs = Libnvmmio(device_size=64 << 20)
        f = fs.create("x", CAP)
        f.write(0, b"EPOCH")
        f.fsync()
        dev = crash_image(fs, p=0.0)
        assert bytes(dev.buffer.working[f.inode.base : f.inode.base + 5]) == b"EPOCH"

    def test_undo_epoch_writes_hit_file_before_sync(self):
        """The undo policy's trade-off: in-place writes are visible in
        the file immediately (fast reads) but a crash between syncs
        leaves NEW data without the log-based rollback our model omits
        — matching the 'atomicity only with fsync' characterization."""
        fs = Libnvmmio(device_size=64 << 20)
        f = fs.create("x", CAP)
        f.write(0, b"base" * 1024)
        for _ in range(5):
            f.read(0, 64)
        f.fsync()  # epoch flips to undo
        assert f.epoch_policy == "undo"
        fs.device.drain()
        f.write(0, b"inplace!")
        dev = crash_image(fs, p=1.0)
        assert bytes(dev.buffer.working[f.inode.base : f.inode.base + 8]) == b"inplace!"


class TestNovaPerOpAtomicity:
    @pytest.mark.parametrize("persist_probability", [0.0, 1.0])
    def test_completed_writes_survive_without_fsync(self, persist_probability):
        fs = Nova(device_size=64 << 20)
        f = fs.create("x", CAP)
        fs.device.drain()
        f.write(0, b"durable-at-return" * 100)
        dev = crash_image(fs, p=persist_probability)
        remounted = Nova.remount(dev)
        f2 = remounted.open("x")
        assert f2.read(0, 17) == b"durable-at-return"

    def test_page_pointer_swing_is_atomic(self):
        """Overwrite a page, crash with nothing unfenced persisted: the
        page table must point at either the old or the new page image."""
        fs = Nova(device_size=64 << 20)
        f = fs.create("x", CAP)
        f.write(0, b"1" * 4096)
        fs.device.drain()
        f.write(0, b"2" * 4096)
        dev = crash_image(fs, p=0.0)
        remounted = Nova.remount(dev)
        data = remounted.open("x").read(0, 4096)
        assert data in (b"1" * 4096, b"2" * 4096)
