"""Exhaustive crash enumeration with asynchronous write-back epochs on.

Same model-checking flavour as ``test_exhaustive_crash.py``: pick crash
points with a small unfenced frontier and enumerate every persistence
subset. The twist is that the background write-back scheduler is armed
with a tiny epoch threshold, so crashes land before, inside, and after
checkpoint drains — a crash mid-epoch must still recover to a legal
prefix (all completed writes, the in-flight one all-or-nothing).
"""

from __future__ import annotations

import itertools
import random

from repro.core import MgspConfig, MgspFilesystem, recover
from repro.errors import CrashRequested
from repro.nvm.crash import CrashPlan
from repro.nvm.device import NvmDevice

CAP = 128 * 1024
MAX_ENUM_WORDS = 8

CONFIG_KW = dict(degree=16, async_writeback=True, writeback_epoch_bytes=16 << 10)


def build_crashed_state(crash_after, seed=33):
    fs = MgspFilesystem(device_size=32 << 20, config=MgspConfig(**CONFIG_KW))
    f = fs.create("e", capacity=CAP)
    fs.device.drain()
    rng = random.Random(seed)
    ref = bytearray(CAP)
    pending = None
    fs.device.crash_plan = CrashPlan(crash_after)
    try:
        for _ in range(10_000):
            off = rng.randrange(0, CAP - 2048)
            payload = bytes([rng.randrange(1, 255)]) * rng.choice([96, 1024, 2048])
            pending = (off, payload)
            f.write(off, payload)  # may also fire an epoch drain
            ref[off : off + len(payload)] = payload
            pending = None
    except CrashRequested:
        return fs, ref, pending
    return None


def legal_states(ref, pending):
    old = bytes(ref)
    states = {old}
    if pending is not None:
        off, payload = pending
        new = bytearray(ref)
        new[off : off + len(payload)] = payload
        states.add(bytes(new))
    return states


def test_crash_mid_epoch_recovers_consistent_prefix():
    checked_points = 0
    enumerated = 0
    drained_any = False
    for crash_after in range(5, 400, 17):
        state = build_crashed_state(crash_after)
        if state is None:
            break
        fs, ref, pending = state
        if fs.flusher is not None and fs.flusher.epochs > 0:
            drained_any = True
        words = fs.device.unfenced_words()
        if len(words) > MAX_ENUM_WORDS:
            continue
        checked_points += 1
        legal = legal_states(ref, pending)
        if enumerated > 500:
            break
        for r in range(len(words) + 1):
            for subset in itertools.combinations(words, r):
                enumerated += 1
                image = fs.device.crash_image(persist_words=subset)
                fs2, _ = recover(
                    NvmDevice.from_image(bytes(image)), config=MgspConfig(**CONFIG_KW)
                )
                got = fs2.open("e").read(0, CAP).ljust(CAP, b"\0")
                assert got in legal, (
                    f"crash_after={crash_after} subset={subset}: illegal state"
                )
    assert checked_points >= 3, checked_points
    assert enumerated >= 40, enumerated


def test_epoch_drains_preserve_contents_without_crash():
    """Sanity: with aggressive epochs, drains fire and the file reads
    back exactly what was written."""
    fs = MgspFilesystem(device_size=32 << 20, config=MgspConfig(**CONFIG_KW))
    f = fs.create("e", capacity=CAP)
    fs.device.drain()
    rng = random.Random(8)
    ref = bytearray(CAP)
    for i in range(200):
        off = rng.randrange(0, CAP - 2048)
        payload = bytes([(i % 250) + 1]) * rng.choice([96, 1024, 2048])
        f.write(off, payload)
        ref[off : off + len(payload)] = payload
    assert fs.flusher is not None and fs.flusher.epochs > 0
    assert fs.flusher.bytes_drained > 0
    assert f.read(0, CAP).ljust(CAP, b"\0") == bytes(ref)
