"""Crash-point enumeration parity (ISSUE 3 satellites).

``count_events`` must equal the number of times an armed plan's
``on_event`` hook would fire — per flush *call* (not per flushed line),
and per *element* inside the vectorized ``_v`` device entry points. A
partial batch interrupted by a crash must leave the device (buffer AND
counters) exactly where the equivalent unbatched sequence would.
"""

from __future__ import annotations

import pytest

from repro.errors import CrashRequested
from repro.nvm.crash import CrashPlan, count_events, counting_plan
from repro.nvm.device import NvmDevice

SIZE = 1 << 20


def stats_tuple(device):
    s = device.stats
    return (s.stores, s.stored_bytes, s.flush_calls, s.flushed_lines, s.fences, s.loads)


class TestFlushCallCounting:
    def test_flush_counts_calls_not_lines(self):
        device = NvmDevice(SIZE)
        device.store(0, b"x" * 256)  # 4 cache lines
        device.flush(0, 256)
        assert device.stats.flush_calls == 1
        assert device.stats.flushed_lines == 4

    def test_flush_of_clean_lines_still_counts_a_call(self):
        device = NvmDevice(SIZE)
        device.store(0, b"x" * 8)
        device.persist(0, 8)
        before = device.stats.flush_calls
        device.flush(0, 8)  # clean: zero lines, but the clwb call happened
        assert device.stats.flush_calls == before + 1
        assert device.stats.flushed_lines == 1  # unchanged from persist

    def test_flush_v_counts_per_element(self):
        device = NvmDevice(SIZE)
        device.store(0, b"x" * 64)
        device.store(4096, b"y" * 64)
        device.flush_v([(0, 64), (4096, 64), (8192, 64)])  # last range clean
        assert device.stats.flush_calls == 3
        assert device.stats.flushed_lines == 2


def run_ops(device):
    """A mixed single-op + vectorized op stream touching every entry
    point that emits crash-plan events."""
    device.store(0, b"a" * 100)
    device.flush(0, 100)
    device.fence()
    device.store_v([(256, b"b" * 64), (512, b"c" * 32), (1024, b"d" * 200)])
    device.flush_v([(256, 64), (512, 32), (1024, 200)])
    device.fence()
    device.nt_store_v([(4096, b"e" * 96), (8192, b"f" * 8)])
    device.fence()
    device.store_word_v([(16384, 7), (16392, 9), (16400, 11)])
    device.fence()
    device.nt_store(32768, b"g" * 64)
    device.atomic_store_u64(65536, 42)
    device.persist(65536, 8)


class TestEnumerationParity:
    def test_count_events_equals_events_fired(self):
        device = NvmDevice(SIZE)
        plan = counting_plan()
        device.crash_plan = plan
        base = device.stats.snapshot()
        run_ops(device)
        assert plan.count == count_events(device, since=base)

    def test_parity_holds_for_each_kind(self):
        for kind in ("store", "flush", "fence"):
            device = NvmDevice(SIZE)
            plan = counting_plan(kinds={kind})
            device.crash_plan = plan
            run_ops(device)
            assert plan.count == count_events(device, kinds={kind}), kind

    def test_unarmed_run_produces_identical_counters(self):
        """store_word_v specializes on crash_plan is None; the census
        must still see the same DeviceStats either way."""
        armed, unarmed = NvmDevice(SIZE), NvmDevice(SIZE)
        armed.crash_plan = counting_plan()
        run_ops(armed)
        run_ops(unarmed)
        assert stats_tuple(armed) == stats_tuple(unarmed)
        assert bytes(armed.buffer.working) == bytes(unarmed.buffer.working)
        assert bytes(armed.buffer.durable) == bytes(unarmed.buffer.durable)

    def test_every_enumerated_point_fires(self):
        census_device = NvmDevice(SIZE)
        census_device.crash_plan = counting_plan()
        run_ops(census_device)
        events = count_events(census_device)
        assert events == census_device.crash_plan.count
        for crash_after in range(events):
            device = NvmDevice(SIZE)
            device.crash_plan = CrashPlan(crash_after)
            with pytest.raises(CrashRequested):
                run_ops(device)
        # One past the end must NOT fire.
        device = NvmDevice(SIZE)
        device.crash_plan = CrashPlan(events)
        run_ops(device)
        assert not device.crash_plan.fired


def batched_vs_unbatched(batched_ops, unbatched_ops, crash_after):
    """Run both under CrashPlan(crash_after); return the two devices."""
    devices = []
    for ops in (batched_ops, unbatched_ops):
        device = NvmDevice(SIZE)
        device.store(0, b"seed" * 16)  # some pre-existing dirty state
        device.crash_plan = CrashPlan(crash_after)
        try:
            ops(device)
            crashed = False
        except CrashRequested:
            crashed = True
        devices.append((device, crashed))
    return devices


WRITES = [(256, b"b" * 64), (512, b"c" * 32), (1024, b"d" * 200), (4096, b"e" * 8)]
WORDS = [(16384, 7), (16392, 9), (16400, 11)]
RANGES = [(256, 64), (512, 32), (1024, 200)]


class TestPartialBatchEquivalence:
    """A crash inside a `_v` batch must be indistinguishable from the
    same crash inside the equivalent single-op loop."""

    def assert_same(self, pair):
        (batched, crashed_b), (unbatched, crashed_u) = pair
        assert crashed_b == crashed_u
        assert stats_tuple(batched) == stats_tuple(unbatched)
        assert bytes(batched.buffer.working) == bytes(unbatched.buffer.working)
        assert bytes(batched.buffer.durable) == bytes(unbatched.buffer.durable)
        assert batched.unfenced_words() == unbatched.unfenced_words()

    @pytest.mark.parametrize("crash_after", range(len(WRITES) + 1))
    def test_store_v(self, crash_after):
        self.assert_same(
            batched_vs_unbatched(
                lambda d: d.store_v(WRITES),
                lambda d: [d.store(o, p) for o, p in WRITES],
                crash_after,
            )
        )

    @pytest.mark.parametrize("crash_after", range(len(WRITES) + 1))
    def test_nt_store_v(self, crash_after):
        self.assert_same(
            batched_vs_unbatched(
                lambda d: d.nt_store_v(WRITES),
                lambda d: [d.nt_store(o, p) for o, p in WRITES],
                crash_after,
            )
        )

    @pytest.mark.parametrize("crash_after", range(len(RANGES) + 1))
    def test_flush_v(self, crash_after):
        def setup_then_flush_v(d):
            d.store_v(WRITES[:3])
            d.flush_v(RANGES)

        def setup_then_flush_loop(d):
            for o, p in WRITES[:3]:
                d.store(o, p)
            for o, ln in RANGES:
                d.flush(o, ln)

        self.assert_same(
            batched_vs_unbatched(setup_then_flush_v, setup_then_flush_loop, 3 + crash_after)
        )

    @pytest.mark.parametrize("crash_after", range(2 * len(WORDS) + 1))
    def test_store_word_v(self, crash_after):
        def unbatched(d):
            for off, value in WORDS:
                d.atomic_store_u64(off, value)
                d.flush(off, 8)

        self.assert_same(
            batched_vs_unbatched(lambda d: d.store_word_v(WORDS), unbatched, crash_after)
        )

    def test_store_word_v_fused_path_matches_delegated_stats(self):
        armed, unarmed = NvmDevice(SIZE), NvmDevice(SIZE)
        armed.crash_plan = counting_plan()
        armed.store_word_v(WORDS)
        unarmed.store_word_v(WORDS)
        assert stats_tuple(armed) == stats_tuple(unarmed)
        assert bytes(armed.buffer.working) == bytes(unarmed.buffer.working)
